"""Block-level scheduling: naive, computation-reordered, fine-grained (Fig. 6).

The scheduler composes the per-phase costs of one Mamba block into a makespan
under three execution schemes:

- ``SEQUENTIAL`` (Fig. 6a): the input projection, SSM and output projection
  run one after another; the MMU idles while the SSMU works and vice versa.
- ``REORDERED`` (Fig. 6b): the input projection is reordered to emit
  ``Delta, B, C`` first and then ``X`` / ``Z`` head by head, so the SSMU
  starts as soon as the first head's operands exist and overlaps with the
  remaining input-projection columns (the paper's *computation reordering*).
- ``FINE_GRAINED`` (Fig. 6c): additionally the SSMU processes
  ``np x pp`` tiles with fused operators, removing the per-head drain/refill
  bubbles (the paper's *fine-grained tiling and fusion*).

Weight streaming from DRAM is double-buffered, so each projection phase costs
``max(compute, memory)`` cycles; during the SSM tail the DRAM is free and is
used to prefetch the output-projection (and next-layer) weights.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["ScheduleMode", "BlockPhases", "BlockSchedule", "schedule_block"]


class ScheduleMode(str, enum.Enum):
    """Execution schemes of Fig. 6."""

    SEQUENTIAL = "sequential"
    REORDERED = "reordered"
    FINE_GRAINED = "fine_grained"


@dataclass(frozen=True)
class BlockPhases:
    """Cycle costs of the phases of one Mamba block (decode, one token).

    All values are in accelerator cycles.  ``dbc_fraction`` is the fraction of
    the input-projection output columns holding ``Delta, B, C`` -- the part
    that must complete before any SSM head can start under the reordered
    schedule.
    """

    in_proj_compute: float
    in_proj_memory: float
    out_proj_compute: float
    out_proj_memory: float
    conv_cycles: float
    ssm_cycles_per_head: float
    ssm_head_overhead: float
    nheads: int
    htu_cycles: float
    other_memory: float = 0.0
    dbc_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.nheads <= 0:
            raise ValueError("nheads must be positive")
        if not 0.0 <= self.dbc_fraction < 1.0:
            raise ValueError("dbc_fraction must be in [0, 1)")
        for name in (
            "in_proj_compute",
            "in_proj_memory",
            "out_proj_compute",
            "out_proj_memory",
            "conv_cycles",
            "ssm_cycles_per_head",
            "ssm_head_overhead",
            "htu_cycles",
            "other_memory",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def ssm_total(self) -> float:
        return self.nheads * (self.ssm_cycles_per_head + self.ssm_head_overhead)

    @property
    def total_memory(self) -> float:
        return self.in_proj_memory + self.out_proj_memory + self.other_memory

    @property
    def total_compute(self) -> float:
        return (
            self.in_proj_compute
            + self.out_proj_compute
            + self.conv_cycles
            + self.ssm_total
            + self.htu_cycles
        )


@dataclass
class BlockSchedule:
    """Makespan and busy-cycle accounting for one block under a schedule."""

    mode: ScheduleMode
    total_cycles: float
    busy_cycles: Dict[str, float] = field(default_factory=dict)
    breakdown: Dict[str, float] = field(default_factory=dict)

    def utilisation(self, unit: str) -> float:
        """Busy fraction of one unit over the block makespan."""
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles.get(unit, 0.0) / self.total_cycles)

    @property
    def compute_utilisation(self) -> float:
        """Busy fraction of the compute units (MMU + SSMU), averaged."""
        units = [u for u in ("mmu", "ssmu") if u in self.busy_cycles]
        if not units:
            return 0.0
        return sum(self.utilisation(u) for u in units) / len(units)

    @property
    def bottleneck_utilisation(self) -> float:
        """Busy fraction of the busiest resource (the paper's utilisation)."""
        if not self.busy_cycles:
            return 0.0
        return min(1.0, max(self.busy_cycles.values()) / self.total_cycles)


def _sequential(phases: BlockPhases) -> BlockSchedule:
    in_phase = max(phases.in_proj_compute, phases.in_proj_memory + phases.other_memory)
    ssm_phase = phases.conv_cycles + phases.ssm_total
    htu_phase = phases.htu_cycles
    out_phase = max(phases.out_proj_compute, phases.out_proj_memory)
    total = in_phase + ssm_phase + htu_phase + out_phase
    busy = {
        "mmu": phases.in_proj_compute + phases.out_proj_compute,
        "ssmu": phases.conv_cycles + phases.ssm_total,
        "htu": phases.htu_cycles,
        "dram": phases.total_memory,
    }
    breakdown = {
        "in_proj": in_phase,
        "ssm": ssm_phase,
        "htu": htu_phase,
        "out_proj": out_phase,
    }
    return BlockSchedule(ScheduleMode.SEQUENTIAL, total, busy, breakdown)


def _overlapped(phases: BlockPhases, fine_grained: bool) -> BlockSchedule:
    head_overhead = 0.0 if fine_grained else phases.ssm_head_overhead
    nheads = phases.nheads

    # The input projection phase is paced by the slower of MMU compute and
    # weight streaming (double buffered).
    in_phase = max(phases.in_proj_compute, phases.in_proj_memory + phases.other_memory)
    t_dbc = phases.dbc_fraction * in_phase + phases.conv_cycles
    per_head_production = (1.0 - phases.dbc_fraction) * in_phase / nheads

    # Head-by-head dependency walk: head h starts when its X/Z columns have
    # been produced and the SSMU has finished the previous head.
    ssmu_free = 0.0
    ssm_busy = 0.0
    for head in range(nheads):
        operands_ready = t_dbc + (head + 1) * per_head_production
        start = max(operands_ready, ssmu_free)
        ssmu_free = start + phases.ssm_cycles_per_head + head_overhead
        ssm_busy += phases.ssm_cycles_per_head
    t_ssm_end = ssmu_free

    # The online Hadamard needs the whole gated output, then the output
    # projection runs; its weights were prefetched while the SSM tail ran.
    t_htu_end = t_ssm_end + phases.htu_cycles
    dram_in_end = phases.in_proj_memory + phases.other_memory
    out_weights_ready = dram_in_end + phases.out_proj_memory
    out_start = max(t_htu_end, dram_in_end)
    total = max(out_start + phases.out_proj_compute, out_weights_ready)

    busy = {
        "mmu": phases.in_proj_compute + phases.out_proj_compute,
        "ssmu": phases.conv_cycles + ssm_busy + (0.0 if fine_grained else nheads * head_overhead),
        "htu": phases.htu_cycles,
        "dram": phases.total_memory,
    }
    breakdown = {
        "in_proj_phase": in_phase,
        "ssm_finish": t_ssm_end,
        "htu_finish": t_htu_end,
        "total": total,
    }
    mode = ScheduleMode.FINE_GRAINED if fine_grained else ScheduleMode.REORDERED
    return BlockSchedule(mode, total, busy, breakdown)


def schedule_block(phases: BlockPhases, mode: ScheduleMode) -> BlockSchedule:
    """Compute the block makespan under the given scheduling mode."""
    if mode is ScheduleMode.SEQUENTIAL:
        return _sequential(phases)
    if mode is ScheduleMode.REORDERED:
        return _overlapped(phases, fine_grained=False)
    if mode is ScheduleMode.FINE_GRAINED:
        return _overlapped(phases, fine_grained=True)
    raise ValueError(f"unknown schedule mode {mode}")  # pragma: no cover
