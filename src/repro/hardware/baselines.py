"""Prior-art FPGA accelerator baselines and the Table I architecture comparison.

The paper compares against FlightLLM (FPGA'24) and DFX (MICRO'22), both
Transformer accelerators; since neither supports Mamba, the comparison runs
them on the Transformer LLMs of their own papers and, like the LightMamba
authors, models their long-sequence behaviour from the parameters each paper
reports ("we simulated their performance based on the parameters in each
paper").  The dominant effect for the Fig. 9a curves is the KV cache: a
Transformer decoder must stream the cache of all previous tokens for every
new token, so throughput decays with the generated length, while Mamba's
fixed-size state keeps LightMamba (and the Mamba GPU baseline) flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["PriorAccelerator", "FLIGHTLLM", "DFX", "ARCHITECTURE_COMPARISON"]


@dataclass(frozen=True)
class PriorAccelerator:
    """Analytic model of a prior Transformer accelerator.

    Attributes
    ----------
    name, platform, model:
        Identification of the published design point.
    num_parameters:
        Parameters of the LLM it runs.
    weight_bits:
        Weight precision of the published design.
    base_tokens_per_second:
        Published short-sequence decode throughput.
    kv_bytes_per_token_per_layer / n_layer:
        KV-cache geometry of the evaluated model (FP16 K and V vectors).
    memory_bandwidth_bytes_per_s:
        Off-chip bandwidth available for streaming the KV cache.
    architecture:
        "temporal" or "spatial" (Table I).
    """

    name: str
    platform: str
    model: str
    num_parameters: float
    weight_bits: float
    base_tokens_per_second: float
    kv_bytes_per_token_per_layer: float
    n_layer: int
    memory_bandwidth_bytes_per_s: float
    architecture: str

    @property
    def kv_bytes_per_token(self) -> float:
        """KV-cache bytes appended (and re-read) per generated token."""
        return self.kv_bytes_per_token_per_layer * self.n_layer

    def tokens_per_second(self, output_tokens: int) -> float:
        """Average decode throughput over a generation of ``output_tokens``.

        The base (published) throughput is degraded by the time spent
        streaming the growing KV cache, averaged over the run.
        """
        if output_tokens <= 0:
            raise ValueError("output_tokens must be positive")
        base_time = 1.0 / self.base_tokens_per_second
        avg_position = (output_tokens - 1) / 2.0
        kv_time = avg_position * self.kv_bytes_per_token / self.memory_bandwidth_bytes_per_s
        return 1.0 / (base_time + kv_time)


#: FlightLLM (FPGA'24) running LLaMA2-7B on an Alveo U280 with ~3.5-bit
#: weights; short-sequence decode throughput and HBM bandwidth from its paper.
FLIGHTLLM = PriorAccelerator(
    name="FlightLLM",
    platform="U280",
    model="LLaMA2-7B",
    num_parameters=7e9,
    weight_bits=3.5,
    base_tokens_per_second=55.0,
    kv_bytes_per_token_per_layer=2 * 4096 * 2.0,  # K and V vectors, FP16
    n_layer=32,
    memory_bandwidth_bytes_per_s=460e9,
    architecture="temporal",
)

#: DFX (MICRO'22): a multi-FPGA (4x U280) appliance running GPT2-1.5B in FP16.
DFX = PriorAccelerator(
    name="DFX",
    platform="4x U280",
    model="GPT2-1.5B",
    num_parameters=1.5e9,
    weight_bits=16.0,
    base_tokens_per_second=71.0,
    kv_bytes_per_token_per_layer=2 * 1600 * 2.0,
    n_layer=48,
    memory_bandwidth_bytes_per_s=4 * 460e9,
    architecture="temporal",
)


#: Qualitative architecture comparison of Table I.
ARCHITECTURE_COMPARISON: List[Dict[str, str]] = [
    {
        "design": "Chen et al. (spatial)",
        "architecture": "Spatial",
        "model": "Transformer",
        "bit_precision": "W4A8",
        "latency": "Low",
        "em_compatibility": "yes",
        "mm_parallelism": "Mid",
    },
    {
        "design": "FlightLLM",
        "architecture": "Temporal",
        "model": "Transformer",
        "bit_precision": "W3.5A8 or FP16",
        "latency": "High",
        "em_compatibility": "no",
        "mm_parallelism": "High",
    },
    {
        "design": "DFX",
        "architecture": "Temporal",
        "model": "Transformer",
        "bit_precision": "FP16",
        "latency": "High",
        "em_compatibility": "no",
        "mm_parallelism": "High",
    },
    {
        "design": "LightMamba (ours)",
        "architecture": "Partial Spatial",
        "model": "Mamba",
        "bit_precision": "W4A4",
        "latency": "Low",
        "em_compatibility": "yes",
        "mm_parallelism": "High",
    },
]
