"""FPGA accelerator model, GPU baselines and prior-art accelerator models.

This package reproduces the hardware side of LightMamba (Sec. V of the
paper): a partially-unrolled spatial architecture with three main units --
the Matrix Multiplication Unit (MMU), the SSM Unit (SSMU) and the Hadamard
Transform Unit (HTU) -- connected to off-chip DRAM, plus the scheduling
optimisations (computation reordering and fine-grained tiling/fusion) that
Fig. 6 / Fig. 7 describe.

Two modelling granularities are provided:

- *tick-accurate* simulation of the SSMU / HTU pipelines
  (:mod:`repro.hardware.pipeline`), used to validate FIFO sizing, pipeline
  balance and the FHT-vs-matrix-multiply latency claim;
- an *analytic phase-level* model (:mod:`repro.hardware.accelerator`) that
  composes per-layer compute and DRAM-transfer cycles into per-token decode
  latency for full-size models, calibrated against the published VCK190 /
  U280 operating points (Table IV).

GPU baselines (:mod:`repro.hardware.gpu`) use a bandwidth-roofline decode
model; prior FPGA accelerators (:mod:`repro.hardware.baselines`) are modelled
from the parameters reported in their papers, as the LightMamba authors did.
"""

from repro.hardware.platforms import (
    FPGAPlatform,
    GPUPlatform,
    VCK190,
    U280,
    RTX2070,
    RTX4090,
    get_platform,
)
from repro.hardware.resources import ResourceUsage, ResourceReport
from repro.hardware.dsp import dsp_packing_factor, dsps_for_macs
from repro.hardware.memory import (
    DramInterface,
    OnChipBufferModel,
    BufferAllocation,
    QuantizedStateMemoryModel,
    StateFootprint,
)
from repro.hardware.fifo import Fifo
from repro.hardware.emu import EMUConfig, ElementwiseMultiplyUnit, ssm_operator_costs
from repro.hardware.mmu import MMUConfig, MatrixMultiplyUnit
from repro.hardware.htu import HTUConfig, HadamardTransformUnit, matrix_hadamard_latency
from repro.hardware.ssmu import SSMUConfig, SSMUnit
from repro.hardware.scheduler import ScheduleMode, BlockSchedule, schedule_block
from repro.hardware.accelerator import AcceleratorConfig, LightMambaAccelerator, AcceleratorReport
from repro.hardware.power import FPGAPowerModel, energy_efficiency
from repro.hardware.gpu import GPUDecodeModel, GPUResult
from repro.hardware.baselines import (
    PriorAccelerator,
    FLIGHTLLM,
    DFX,
    ARCHITECTURE_COMPARISON,
)

__all__ = [
    "FPGAPlatform",
    "GPUPlatform",
    "VCK190",
    "U280",
    "RTX2070",
    "RTX4090",
    "get_platform",
    "ResourceUsage",
    "ResourceReport",
    "dsp_packing_factor",
    "dsps_for_macs",
    "DramInterface",
    "OnChipBufferModel",
    "BufferAllocation",
    "QuantizedStateMemoryModel",
    "StateFootprint",
    "Fifo",
    "EMUConfig",
    "ElementwiseMultiplyUnit",
    "ssm_operator_costs",
    "MMUConfig",
    "MatrixMultiplyUnit",
    "HTUConfig",
    "HadamardTransformUnit",
    "matrix_hadamard_latency",
    "SSMUConfig",
    "SSMUnit",
    "ScheduleMode",
    "BlockSchedule",
    "schedule_block",
    "AcceleratorConfig",
    "LightMambaAccelerator",
    "AcceleratorReport",
    "FPGAPowerModel",
    "energy_efficiency",
    "GPUDecodeModel",
    "GPUResult",
    "PriorAccelerator",
    "FLIGHTLLM",
    "DFX",
    "ARCHITECTURE_COMPARISON",
]
