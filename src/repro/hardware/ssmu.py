"""SSM Unit (SSMU): the fully-unrolled, pipelined SSM datapath.

The SSMU (Fig. 5c) implements every operator of the SSM layer with a
dedicated unit -- element-wise multiplier arrays (EMUs), the softplus / exp /
SiLU non-linearities and the readout accumulator -- connected through FIFOs
so that a head's computation flows through the pipeline without returning to
off-chip memory.

Two buffer organisations are modelled (Fig. 7):

- *tensor-by-tensor*: every intermediate tensor (``B_bar (.) x``,
  ``A_bar (.) h``, ``h (.) C`` ...) is materialised in on-chip URAM before the
  next operator starts -- simple, but the SSMU ends up holding >70% of the
  device URAM;
- *tile-by-tile* (fine-grained tiling + fusion): operators are fused so that
  only an ``np x pp`` tile of each intermediate is alive at a time, cutting
  the SSMU URAM by ~4x and removing the per-head pipeline bubbles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.hardware.emu import (
    DEFAULT_SSM_PARALLELISM,
    EMUConfig,
    ElementwiseMultiplyUnit,
)
from repro.hardware.memory import BufferAllocation, OnChipBufferModel
from repro.hardware.pipeline import LinearPipeline, PipelineStage
from repro.hardware.resources import ResourceUsage

__all__ = ["SSMUConfig", "SSMUnit"]

# LUT-implemented non-linear units (piecewise-linear approximations).
_NONLINEAR_UNITS = {"softplus": 2600, "exp": 2200, "silu": 2400}
_ACCUMULATOR_LUT = 1800
_CONV_LANES = 8
_CONV_LUT_PER_LANE = 160
_HEAD_RESTART_OVERHEAD = 24   # drain/refill bubble between heads (coarse pipeline)
_PIPELINE_FILL = 40           # one-off fill latency of the fused pipeline


@dataclass(frozen=True)
class SSMUConfig:
    """Dimensions, precision and per-operator parallelism of the SSMU.

    Attributes
    ----------
    nheads, headdim, d_state:
        SSM dimensions (``h``, ``p``, ``n`` of Fig. 1).
    bits:
        Operand precision of the quantized SSM datapath (8 in the paper);
        16 models the unquantized FP baseline.
    pot_requant:
        Power-of-two re-quantization (shift) versus naive multiplier-based.
    state_bytes:
        Bytes per hidden-state element held on chip.
    parallelism:
        Per-operator EMU lane counts; defaults to Fig. 5(c) (1x8 units for
        head-sized operators, 2x8 units for state-sized operators).
    tile_heads, tile_state:
        Fine-grained tile shape ``np x pp`` along the head and state axes.
    """

    nheads: int
    headdim: int
    d_state: int
    bits: int = 8
    pot_requant: bool = True
    state_bytes: int = 2
    accumulator_bytes: int = 4
    parallelism: Optional[Mapping[str, int]] = None
    tile_heads: int = 1
    tile_state: int = 32

    def __post_init__(self) -> None:
        if min(self.nheads, self.headdim, self.d_state) <= 0:
            raise ValueError("nheads, headdim and d_state must be positive")
        if self.tile_heads <= 0 or self.tile_state <= 0:
            raise ValueError("tile sizes must be positive")
        if self.bits not in (4, 8, 16):
            raise ValueError("bits must be 4, 8 or 16")

    @property
    def lanes(self) -> Dict[str, int]:
        lanes = dict(DEFAULT_SSM_PARALLELISM)
        if self.parallelism:
            lanes.update(self.parallelism)
        return lanes

    @property
    def element_bytes(self) -> int:
        """Bytes per intermediate element at the datapath precision."""
        return 2 if self.bits == 16 else 1

    @property
    def d_inner(self) -> int:
        return self.nheads * self.headdim


@dataclass
class SSMUnit:
    """Resource, timing and buffer model of the SSMU."""

    config: SSMUConfig
    buffer_model: OnChipBufferModel = field(default_factory=OnChipBufferModel)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def emus(self) -> Dict[str, ElementwiseMultiplyUnit]:
        cfg = self.config
        return {
            op: ElementwiseMultiplyUnit(
                EMUConfig(name=op, lanes=lanes, bits=cfg.bits, pot_requant=cfg.pot_requant)
            )
            for op, lanes in cfg.lanes.items()
        }

    def resources(self) -> ResourceUsage:
        """Logic resources of the SSMU (buffers reported separately)."""
        usage = ResourceUsage.total(emu.resources() for emu in self.emus().values())
        nonlinear_lut = sum(_NONLINEAR_UNITS.values()) + _ACCUMULATOR_LUT
        conv_lut = _CONV_LANES * _CONV_LUT_PER_LANE
        from repro.hardware.dsp import dsps_for_macs

        conv_dsp = dsps_for_macs(_CONV_LANES, min(self.config.bits, 8), min(self.config.bits, 8))
        return usage + ResourceUsage(lut=nonlinear_lut + conv_lut, ff=2600, dsp=conv_dsp)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def _bottleneck_lanes(self) -> int:
        """Lanes of the state-sized operators (the pipeline bottleneck)."""
        lanes = self.config.lanes
        return min(lanes["B_mul_x"], lanes["A_mul_h"], lanes["h_mul_C"])

    def cycles_per_head(self) -> int:
        """Steady-state cycles to push one head through the SSMU pipeline."""
        cfg = self.config
        elements = cfg.headdim * cfg.d_state
        return math.ceil(elements / self._bottleneck_lanes())

    def total_cycles(self, fine_grained: bool = True, heads: Optional[int] = None) -> int:
        """Cycles to process ``heads`` heads of one token.

        With the coarse-grained organisation each head pays a drain/refill
        bubble; the fine-grained tiling keeps the pipeline full across heads
        so only a single fill is paid.
        """
        cfg = self.config
        heads = cfg.nheads if heads is None else heads
        if heads < 0:
            raise ValueError("heads must be non-negative")
        if heads == 0:
            return 0
        per_head = self.cycles_per_head()
        if fine_grained:
            return heads * per_head + _PIPELINE_FILL
        return heads * (per_head + _HEAD_RESTART_OVERHEAD) + _PIPELINE_FILL

    def simulate_pipeline(self, heads: int = 1, fifo_capacity: int = 64):
        """Tick-accurate simulation of the per-head operator pipeline.

        The stages correspond to the operator chain
        ``delta_mul_B -> B_mul_x -> A_mul_h(+add) -> h_mul_C -> accumulate``;
        the returned result carries per-stage utilisation and FIFO occupancy.
        """
        cfg = self.config
        lanes = cfg.lanes
        stages = [
            PipelineStage(name="delta_mul_B", rate=lanes["delta_mul_B"], latency=2),
            PipelineStage(name="B_mul_x", rate=lanes["B_mul_x"], latency=2),
            PipelineStage(name="A_mul_h", rate=lanes["A_mul_h"], latency=2),
            PipelineStage(name="h_mul_C", rate=lanes["h_mul_C"], latency=2),
            PipelineStage(name="accumulate", rate=lanes["h_mul_C"], latency=1),
        ]
        pipeline = LinearPipeline(stages, fifo_capacity=fifo_capacity)
        elements = heads * cfg.headdim * cfg.d_state
        source_rate = lanes["B_mul_x"]
        return pipeline.run(elements, source_rate=source_rate)

    # ------------------------------------------------------------------
    # Buffers (Fig. 7)
    # ------------------------------------------------------------------
    def buffer_bytes(self, fine_grained: bool = True) -> Dict[str, float]:
        """Named on-chip buffer sizes in bytes for the chosen organisation."""
        cfg = self.config
        h, p, n = cfg.nheads, cfg.headdim, cfg.d_state
        state_elems = h * p * n
        elem = cfg.element_bytes

        buffers: Dict[str, float] = {
            # The recurrent hidden state persists across tokens.
            "ssm_state": state_elems * cfg.state_bytes,
            # Inputs staged for the reordered schedule: Delta, B, C for all
            # heads plus the per-head x and gating z slices.
            "delta_B_C": (h + 2 * n) * 2,
            "x_buffer": cfg.d_inner * elem,
            "z_buffer": cfg.d_inner * elem,
            "y_output": cfg.d_inner * 2,
        }
        # Intermediate element-wise products live at accumulator precision
        # until they are re-quantized (INT32/FP32), which is what makes the
        # tensor-by-tensor organisation so URAM-hungry (Fig. 7a).  The
        # ``h (.) C`` product feeds the readout reduction directly and is
        # never materialised as a full tensor.
        acc = cfg.accumulator_bytes
        if fine_grained:
            tile_elems = cfg.tile_heads * p * min(cfg.tile_state, n)
            for name in ("B_mul_x", "A_mul_h"):
                buffers[name] = tile_elems * acc
        else:
            for name in ("B_mul_x", "A_mul_h"):
                buffers[name] = state_elems * acc
            buffers["delta_mul_B"] = h * n * acc
        return buffers

    def buffer_allocations(self, fine_grained: bool = True) -> list[BufferAllocation]:
        return self.buffer_model.allocate_many(self.buffer_bytes(fine_grained))

    def uram_usage(self, fine_grained: bool = True) -> int:
        """Total URAM blocks of the SSMU buffers."""
        return sum(a.uram for a in self.buffer_allocations(fine_grained))

    def bram_usage(self, fine_grained: bool = True) -> int:
        return sum(a.bram for a in self.buffer_allocations(fine_grained))
