"""GPU decode baseline (roofline model).

Single-batch autoregressive LLM decode on a GPU is memory-bandwidth bound:
every weight is read once per generated token, so

    tokens/s  =  bandwidth x utilisation / bytes_per_token

with ``bytes_per_token = parameters x bytes_per_parameter`` for Mamba (whose
recurrent state is negligible) plus, for Transformer baselines, the KV-cache
bytes that grow with the generated sequence length.  The utilisation factor
is the fraction of peak bandwidth a decode kernel achieves in practice; the
published RTX 2070 / RTX 4090 numbers of Table IV (65 and 138 tokens/s for
Mamba2-2.7B in FP16) correspond to roughly 75%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.platforms import GPUPlatform, RTX2070
from repro.mamba.config import Mamba2Config

__all__ = ["GPUDecodeModel", "GPUResult"]


@dataclass(frozen=True)
class GPUResult:
    """Decode performance of a GPU baseline."""

    platform: str
    model: str
    tokens_per_second: float
    power_w: float

    @property
    def energy_efficiency(self) -> float:
        """Tokens per joule."""
        return self.tokens_per_second / self.power_w


@dataclass(frozen=True)
class GPUDecodeModel:
    """Bandwidth-roofline decode model for a GPU platform.

    Attributes
    ----------
    platform:
        GPU specification (bandwidth, board power, achievable utilisation).
    bytes_per_parameter:
        Weight storage precision (2.0 for the FP16 baselines of the paper).
    kernel_overhead_s:
        Fixed per-token launch/synchronisation overhead; matters only for
        very small models.
    """

    platform: GPUPlatform = RTX2070
    bytes_per_parameter: float = 2.0
    kernel_overhead_s: float = 2.0e-4

    def bytes_per_token(
        self,
        num_parameters: float,
        kv_bytes_per_token: float = 0.0,
        sequence_position: int = 0,
    ) -> float:
        """DRAM traffic to produce one token at a given sequence position."""
        if num_parameters <= 0:
            raise ValueError("num_parameters must be positive")
        return num_parameters * self.bytes_per_parameter + kv_bytes_per_token * sequence_position

    def decode_tokens_per_second(
        self,
        num_parameters: float,
        kv_bytes_per_token: float = 0.0,
        sequence_position: int = 0,
    ) -> float:
        """Sustained decode throughput at one sequence position."""
        traffic = self.bytes_per_token(num_parameters, kv_bytes_per_token, sequence_position)
        effective_bw = (
            self.platform.dram_bandwidth_bytes_per_s * self.platform.mem_bandwidth_utilisation
        )
        seconds = traffic / effective_bw + self.kernel_overhead_s
        return 1.0 / seconds

    def mamba_result(self, config: Mamba2Config) -> GPUResult:
        """Decode throughput / power for a Mamba2 model (no KV cache)."""
        return GPUResult(
            platform=self.platform.name,
            model=config.name,
            tokens_per_second=self.decode_tokens_per_second(config.num_parameters()),
            power_w=self.platform.board_power_w,
        )

    def transformer_tokens_per_second(
        self,
        num_parameters: float,
        kv_bytes_per_token: float,
        output_tokens: int,
    ) -> float:
        """Average throughput over a whole generation for a Transformer.

        The KV cache grows with every generated token, so the average is taken
        over the sequence (the declining curves of Fig. 9a).
        """
        if output_tokens <= 0:
            raise ValueError("output_tokens must be positive")
        # Average sequence position over the run is (output_tokens - 1) / 2.
        avg_position = (output_tokens - 1) / 2.0
        return self.decode_tokens_per_second(num_parameters, kv_bytes_per_token, int(avg_position))
