"""Off-chip memory interface and on-chip buffer models.

During decode the accelerator streams every weight from off-chip DRAM once
per token, which makes the VCK190 design memory-bound (12 GB/s LPDDR) and the
U280 design mostly compute-bound (460 GB/s HBM).  :class:`DramInterface`
converts byte counts to accelerator cycles; :class:`OnChipBufferModel`
converts activation buffer bytes to BRAM / URAM counts the way Vivado maps
them (URAM for the large SSM-state and activation buffers, BRAM for small
FIFOs and weight tiles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from repro.hardware.platforms import FPGAPlatform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mamba.config import Mamba2Config

__all__ = [
    "DramInterface",
    "OnChipBufferModel",
    "BufferAllocation",
    "QuantizedStateMemoryModel",
    "StateFootprint",
]

#: Usable bytes of one UltraRAM block (288 Kb).
URAM_BYTES = 288 * 1024 // 8
#: Usable bytes of one 36 Kb block RAM.
BRAM_BYTES = 36 * 1024 // 8


@dataclass(frozen=True)
class DramInterface:
    """Off-chip memory modelled as a bandwidth with a utilisation efficiency.

    Attributes
    ----------
    bandwidth_bytes_per_s:
        Peak interface bandwidth.
    frequency_hz:
        Accelerator clock used to express transfers in cycles.
    efficiency:
        Achievable fraction of the peak for the long sequential bursts used
        by weight streaming (DMA overhead, refresh, protocol).
    """

    bandwidth_bytes_per_s: float
    frequency_hz: float
    efficiency: float = 0.88

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0 or self.frequency_hz <= 0:
            raise ValueError("bandwidth and frequency must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")

    @classmethod
    def for_platform(cls, platform: FPGAPlatform, efficiency: float = 0.88) -> "DramInterface":
        return cls(
            bandwidth_bytes_per_s=platform.dram_bandwidth_bytes_per_s,
            frequency_hz=platform.frequency_hz,
            efficiency=efficiency,
        )

    @property
    def bytes_per_cycle(self) -> float:
        """Effective bytes delivered per accelerator cycle."""
        return self.bandwidth_bytes_per_s * self.efficiency / self.frequency_hz

    def cycles_for_bytes(self, num_bytes: float) -> float:
        """Cycles to stream ``num_bytes`` from DRAM."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / self.bytes_per_cycle

    def seconds_for_bytes(self, num_bytes: float) -> float:
        return self.cycles_for_bytes(num_bytes) / self.frequency_hz


@dataclass(frozen=True)
class BufferAllocation:
    """On-chip storage assigned to a named buffer."""

    name: str
    num_bytes: float
    uram: int
    bram: int


@dataclass(frozen=True)
class OnChipBufferModel:
    """Maps buffer byte requirements onto URAM / BRAM blocks.

    Buffers at least ``uram_threshold_bytes`` large are placed in URAM (as the
    implementation does for the SSM intermediate tensors, which the paper
    reports occupying >70% of URAM before tiling); smaller buffers use BRAM.
    """

    uram_threshold_bytes: int = 16 * 1024
    banking_overhead: float = 1.10  # port/banking rounding losses

    def allocate(self, name: str, num_bytes: float) -> BufferAllocation:
        """Allocate a buffer and return its URAM / BRAM block counts."""
        if num_bytes < 0:
            raise ValueError("buffer size must be non-negative")
        effective = num_bytes * self.banking_overhead
        if effective >= self.uram_threshold_bytes:
            return BufferAllocation(
                name=name,
                num_bytes=num_bytes,
                uram=math.ceil(effective / URAM_BYTES),
                bram=0,
            )
        return BufferAllocation(
            name=name,
            num_bytes=num_bytes,
            uram=0,
            bram=max(1, math.ceil(effective / BRAM_BYTES)) if num_bytes > 0 else 0,
        )

    def allocate_many(self, buffers: dict[str, float]) -> list[BufferAllocation]:
        """Allocate several named buffers at once."""
        return [self.allocate(name, size) for name, size in buffers.items()]


@dataclass(frozen=True)
class StateFootprint:
    """On-chip footprint of the decode-resident recurrent state.

    All byte counts are for the *whole model* (every layer) at the given
    batch size; ``allocations`` maps each per-layer buffer to its URAM/BRAM
    placement (the state buffers are per-layer on the accelerator -- one SSMU
    tile owns one layer's state at a time).

    ``ssm_state_bytes`` holds the state values themselves -- packed INT codes
    for a quantized footprint, FP16 floats for the baseline; the scales (the
    quantized representation's per-group exponents) are accounted separately
    in ``ssm_scale_bytes`` (zero for the baseline).  ``operand_bytes`` is the
    all-integer decode iteration's working set: the per-token ``x`` / ``B`` /
    ``C`` and folded ``delta B`` operand codes (plus their shift exponents)
    that stay resident alongside the state codes between in-projection and
    readout instead of round-tripping through float buffers.  It is zero for
    the FP16 baseline and for quantized footprints sized without operands.
    """

    ssm_state_bytes: float
    ssm_scale_bytes: float
    conv_bytes: float
    allocations: tuple
    operand_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return (
            self.ssm_state_bytes
            + self.ssm_scale_bytes
            + self.conv_bytes
            + self.operand_bytes
        )

    @property
    def uram(self) -> int:
        """Total URAM blocks across the per-layer state buffers."""
        return sum(a.uram for a in self.allocations)

    @property
    def bram(self) -> int:
        """Total BRAM blocks across the per-layer state buffers."""
        return sum(a.bram for a in self.allocations)


@dataclass(frozen=True)
class QuantizedStateMemoryModel:
    """Sizes the on-chip footprint of the integer-resident decode state.

    The persistent-state decode (``SSMQuantConfig.persistent_state``) keeps
    the recurrent state ``h`` on-chip as INT codes plus one power-of-two
    scale exponent per quantization group, exactly as the FPGA state buffer
    stores it; the convolution window stays FP16.  This model converts a
    :class:`~repro.mamba.config.Mamba2Config` into the per-layer byte / URAM
    / BRAM costs of that residency so the paper's tiling study (Fig. 7) can
    compare the quantized state buffer against the FP16 baseline per
    platform and batch size.

    Attributes
    ----------
    state_bits:
        Code width of the resident SSM state (the paper's SSMU uses INT8).
    group_size:
        Quantization group length along ``d_state`` (one scale per group).
    scale_bytes:
        Storage of one scale.  PoT scales are a signed shift exponent -- one
        byte -- which is what makes the resident representation cheap; a
        non-PoT ablation would need an FP16 multiplier per group (2.0).
    conv_bytes_per_element:
        Storage of one convolution-window element (FP16 by default).
    buffer_model:
        The URAM/BRAM mapping used for placements.
    """

    state_bits: int = 8
    group_size: int = 32
    scale_bytes: float = 1.0
    conv_bytes_per_element: float = 2.0
    buffer_model: OnChipBufferModel = field(default_factory=OnChipBufferModel)

    def __post_init__(self) -> None:
        if self.state_bits <= 0 or self.group_size <= 0:
            raise ValueError("state_bits and group_size must be positive")
        if self.scale_bytes < 0 or self.conv_bytes_per_element <= 0:
            raise ValueError("byte costs must be positive (scales may be 0 for ablations)")

    # ------------------------------------------------------------------
    # Element counts
    # ------------------------------------------------------------------
    def _per_layer_counts(self, config: "Mamba2Config", batch_size: int) -> Dict[str, float]:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        state_elems = batch_size * config.nheads * config.headdim * config.d_state
        group = min(self.group_size, config.d_state)
        n_groups = -(-config.d_state // group)
        scale_elems = batch_size * config.nheads * config.headdim * n_groups
        conv_elems = batch_size * config.conv_dim * config.d_conv
        return {"state": state_elems, "scales": scale_elems, "conv": conv_elems}

    def _operand_counts(self, config: "Mamba2Config", batch_size: int) -> Dict[str, float]:
        """Per-layer element counts of the decode-resident operand codes.

        One all-integer decode iteration keeps four operand tensors on codes
        between in-projection and readout: the per-token ``x``
        (``nheads * headdim``), ``B`` and ``C`` (``d_state`` each), and the
        scalar-folded ``delta B`` (``nheads * d_state``).  Each carries one
        shift exponent per quantization group along its grouped axis
        (``headdim`` for ``x``, ``d_state`` for the rest).
        """
        group_n = min(self.group_size, config.d_state)
        n_groups = -(-config.d_state // group_n)
        group_p = min(self.group_size, config.headdim)
        p_groups = -(-config.headdim // group_p)
        code_elems = batch_size * (
            config.nheads * config.headdim  # x
            + 2 * config.d_state  # B, C
            + config.nheads * config.d_state  # delta B, folded per head
        )
        scale_elems = batch_size * (
            config.nheads * p_groups  # x exponents
            + 2 * n_groups  # B, C exponents
            + config.nheads * n_groups  # delta B exponents
        )
        return {"codes": code_elems, "scales": scale_elems}

    # ------------------------------------------------------------------
    # Footprints
    # ------------------------------------------------------------------
    def quantized_footprint(
        self,
        config: "Mamba2Config",
        batch_size: int = 1,
        include_operands: bool = False,
    ) -> StateFootprint:
        """Footprint of the integer-resident state (codes + PoT exponents).

        With ``include_operands=True`` the footprint also counts the
        all-integer decode iteration's operand working set -- the per-token
        ``x`` / ``B`` / ``C`` / ``delta B`` codes and their shift exponents
        that stay resident alongside the state codes (one ``ssm_operands``
        buffer per layer) -- matching what the SSMU keeps on-chip when no
        float tensor is materialized between in-projection and readout.
        """
        counts = self._per_layer_counts(config, batch_size)
        code_bytes = counts["state"] * self.state_bits / 8.0
        scale_bytes = counts["scales"] * self.scale_bytes
        conv_bytes = counts["conv"] * self.conv_bytes_per_element
        operand_bytes = 0.0
        if include_operands:
            operands = self._operand_counts(config, batch_size)
            operand_bytes = (
                operands["codes"] * self.state_bits / 8.0
                + operands["scales"] * self.scale_bytes
            )
        allocations = []
        for layer in range(config.n_layer):
            allocations.append(
                self.buffer_model.allocate(f"ssm_state_codes[{layer}]", code_bytes + scale_bytes)
            )
            if include_operands:
                allocations.append(
                    self.buffer_model.allocate(f"ssm_operands[{layer}]", operand_bytes)
                )
            allocations.append(
                self.buffer_model.allocate(f"conv_window[{layer}]", conv_bytes)
            )
        return StateFootprint(
            ssm_state_bytes=code_bytes * config.n_layer,
            ssm_scale_bytes=scale_bytes * config.n_layer,
            conv_bytes=conv_bytes * config.n_layer,
            allocations=tuple(allocations),
            operand_bytes=operand_bytes * config.n_layer,
        )

    def fp16_footprint(self, config: "Mamba2Config", batch_size: int = 1) -> StateFootprint:
        """Footprint of the FP16-resident baseline (no codes, no scales)."""
        counts = self._per_layer_counts(config, batch_size)
        state_bytes = counts["state"] * 2.0
        conv_bytes = counts["conv"] * self.conv_bytes_per_element
        allocations = []
        for layer in range(config.n_layer):
            allocations.append(
                self.buffer_model.allocate(f"ssm_state_fp16[{layer}]", state_bytes)
            )
            allocations.append(
                self.buffer_model.allocate(f"conv_window[{layer}]", conv_bytes)
            )
        return StateFootprint(
            ssm_state_bytes=state_bytes * config.n_layer,
            ssm_scale_bytes=0.0,
            conv_bytes=conv_bytes * config.n_layer,
            allocations=tuple(allocations),
        )

    def compression_ratio(self, config: "Mamba2Config", batch_size: int = 1) -> float:
        """FP16-resident bytes over integer-resident bytes (> 1 is a win)."""
        return (
            self.fp16_footprint(config, batch_size).total_bytes
            / self.quantized_footprint(config, batch_size).total_bytes
        )

    def max_resident_batch(
        self, config: "Mamba2Config", platform: FPGAPlatform, uram_budget_fraction: float = 0.7
    ) -> int:
        """Largest batch whose quantized state fits the platform's URAM budget.

        The paper reports the SSM intermediate buffers consuming >70% of
        URAM before tiling; this inverts the model -- how many concurrent
        requests' resident state fit in ``uram_budget_fraction`` of the
        platform's URAM -- which bounds the serving engine's useful
        ``max_batch_size`` on that device.  Returns 0 when even batch 1 does
        not fit.
        """
        if not 0.0 < uram_budget_fraction <= 1.0:
            raise ValueError("uram_budget_fraction must be in (0, 1]")
        budget = platform.uram * uram_budget_fraction
        if self.quantized_footprint(config, 1).uram > budget:
            return 0
        lo, hi = 1, 2
        while self.quantized_footprint(config, hi).uram <= budget:
            lo, hi = hi, hi * 2
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.quantized_footprint(config, mid).uram <= budget:
                lo = mid
            else:
                hi = mid
        return lo
