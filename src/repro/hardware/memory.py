"""Off-chip memory interface and on-chip buffer models.

During decode the accelerator streams every weight from off-chip DRAM once
per token, which makes the VCK190 design memory-bound (12 GB/s LPDDR) and the
U280 design mostly compute-bound (460 GB/s HBM).  :class:`DramInterface`
converts byte counts to accelerator cycles; :class:`OnChipBufferModel`
converts activation buffer bytes to BRAM / URAM counts the way Vivado maps
them (URAM for the large SSM-state and activation buffers, BRAM for small
FIFOs and weight tiles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.platforms import FPGAPlatform

__all__ = ["DramInterface", "OnChipBufferModel", "BufferAllocation"]

#: Usable bytes of one UltraRAM block (288 Kb).
URAM_BYTES = 288 * 1024 // 8
#: Usable bytes of one 36 Kb block RAM.
BRAM_BYTES = 36 * 1024 // 8


@dataclass(frozen=True)
class DramInterface:
    """Off-chip memory modelled as a bandwidth with a utilisation efficiency.

    Attributes
    ----------
    bandwidth_bytes_per_s:
        Peak interface bandwidth.
    frequency_hz:
        Accelerator clock used to express transfers in cycles.
    efficiency:
        Achievable fraction of the peak for the long sequential bursts used
        by weight streaming (DMA overhead, refresh, protocol).
    """

    bandwidth_bytes_per_s: float
    frequency_hz: float
    efficiency: float = 0.88

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0 or self.frequency_hz <= 0:
            raise ValueError("bandwidth and frequency must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")

    @classmethod
    def for_platform(cls, platform: FPGAPlatform, efficiency: float = 0.88) -> "DramInterface":
        return cls(
            bandwidth_bytes_per_s=platform.dram_bandwidth_bytes_per_s,
            frequency_hz=platform.frequency_hz,
            efficiency=efficiency,
        )

    @property
    def bytes_per_cycle(self) -> float:
        """Effective bytes delivered per accelerator cycle."""
        return self.bandwidth_bytes_per_s * self.efficiency / self.frequency_hz

    def cycles_for_bytes(self, num_bytes: float) -> float:
        """Cycles to stream ``num_bytes`` from DRAM."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / self.bytes_per_cycle

    def seconds_for_bytes(self, num_bytes: float) -> float:
        return self.cycles_for_bytes(num_bytes) / self.frequency_hz


@dataclass(frozen=True)
class BufferAllocation:
    """On-chip storage assigned to a named buffer."""

    name: str
    num_bytes: float
    uram: int
    bram: int


@dataclass(frozen=True)
class OnChipBufferModel:
    """Maps buffer byte requirements onto URAM / BRAM blocks.

    Buffers at least ``uram_threshold_bytes`` large are placed in URAM (as the
    implementation does for the SSM intermediate tensors, which the paper
    reports occupying >70% of URAM before tiling); smaller buffers use BRAM.
    """

    uram_threshold_bytes: int = 16 * 1024
    banking_overhead: float = 1.10  # port/banking rounding losses

    def allocate(self, name: str, num_bytes: float) -> BufferAllocation:
        """Allocate a buffer and return its URAM / BRAM block counts."""
        if num_bytes < 0:
            raise ValueError("buffer size must be non-negative")
        effective = num_bytes * self.banking_overhead
        if effective >= self.uram_threshold_bytes:
            return BufferAllocation(
                name=name,
                num_bytes=num_bytes,
                uram=math.ceil(effective / URAM_BYTES),
                bram=0,
            )
        return BufferAllocation(
            name=name,
            num_bytes=num_bytes,
            uram=0,
            bram=max(1, math.ceil(effective / BRAM_BYTES)) if num_bytes > 0 else 0,
        )

    def allocate_many(self, buffers: dict[str, float]) -> list[BufferAllocation]:
        """Allocate several named buffers at once."""
        return [self.allocate(name, size) for name, size in buffers.items()]
