"""The LightMamba accelerator: per-token latency, throughput and resources.

:class:`LightMambaAccelerator` composes the unit models (MMU, SSMU, HTU), the
off-chip memory interface and the block scheduler into a full-model decode
model.  It is the analytic counterpart of the paper's cycle-accurate U280
simulator: given a platform, a quantization configuration and a Mamba2 model
configuration it produces

- per-token decode latency (cycles / seconds) and throughput (tokens/s),
- a per-module resource report (Table IV / Fig. 8),
- on-chip buffer (URAM) usage with and without fine-grained tiling (Fig. 7 /
  Fig. 10),
- power and energy efficiency via :mod:`repro.hardware.power`.

The defaults are calibrated against the published VCK190 / U280 operating
points; EXPERIMENTS.md records measured-vs-paper values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.mamba.config import Mamba2Config
from repro.hardware.htu import HTUConfig, HadamardTransformUnit
from repro.hardware.memory import DramInterface, OnChipBufferModel
from repro.hardware.mmu import MMUConfig, MatrixMultiplyUnit
from repro.hardware.platforms import FPGAPlatform, U280, VCK190
from repro.hardware.power import FPGAPowerModel
from repro.hardware.resources import ResourceReport, ResourceUsage
from repro.hardware.scheduler import BlockPhases, BlockSchedule, ScheduleMode, schedule_block
from repro.hardware.ssmu import SSMUConfig, SSMUnit

__all__ = ["AcceleratorConfig", "AcceleratorReport", "LightMambaAccelerator"]


@dataclass(frozen=True)
class AcceleratorConfig:
    """Design-point configuration of the accelerator.

    Attributes
    ----------
    platform:
        Target FPGA board.
    weight_bits / act_bits:
        Linear-layer precision streamed from DRAM and fed to the MMU
        (16 models the unquantized FP16 baseline of the ablation).
    group_size:
        Quantization group size (adds per-group FP16 scales to the weight
        stream).
    mmu:
        MMU shape; defaults to a platform-appropriate size.
    ssm_bits:
        SSM datapath precision (8 when the SSM is quantized, 16 otherwise).
    ssm_pot_requant:
        Power-of-two re-quantization in the SSMU.
    ssm_lane_scale:
        Multiplier on the default per-operator SSMU lane counts (the U280
        design uses wider EMUs).
    use_rotation:
        Whether the online Hadamard transform is part of the layer (the
        rotation-assisted quantization is enabled).
    use_fht:
        Execute the online rotation with the FHT-based HTU; ``False`` models
        the naive matrix-multiply rotation of the ablation.
    schedule:
        Block scheduling mode (Fig. 6).
    dram_efficiency:
        Achievable fraction of peak DRAM bandwidth.
    compute_overhead:
        Multiplier on compute-phase cycles accounting for control, stalls and
        DMA re-initialisation not modelled explicitly.
    """

    platform: FPGAPlatform = VCK190
    weight_bits: int = 4
    act_bits: int = 4
    group_size: int = 128
    mmu: Optional[MMUConfig] = None
    ssm_bits: int = 8
    ssm_pot_requant: bool = True
    ssm_lane_scale: Optional[int] = None
    use_rotation: bool = True
    use_fht: bool = True
    schedule: ScheduleMode = ScheduleMode.FINE_GRAINED
    dram_efficiency: float = 0.86
    compute_overhead: float = 1.10

    def mmu_config(self) -> MMUConfig:
        """The MMU shape, defaulting to a platform-appropriate design."""
        if self.mmu is not None:
            return replace(self.mmu, weight_bits=self.weight_bits, act_bits=self.act_bits)
        if self.platform.name == U280.name:
            return MMUConfig(din=128, dout=16, weight_bits=self.weight_bits, act_bits=self.act_bits)
        return MMUConfig(din=128, dout=2, weight_bits=self.weight_bits, act_bits=self.act_bits)

    def resolved_ssm_lane_scale(self) -> int:
        """SSMU lane multiplier, defaulting to a platform-appropriate value.

        The bandwidth-bound VCK190 design keeps the SSMU narrow (it hides
        under the weight stream once reordered); the compute-bound U280 design
        widens every EMU so the SSM stays off the critical path.
        """
        if self.ssm_lane_scale is not None:
            return self.ssm_lane_scale
        return 32 if self.platform.name == U280.name else 1

    def with_overrides(self, **kwargs) -> "AcceleratorConfig":
        return replace(self, **kwargs)

    @property
    def label(self) -> str:
        return f"{self.platform.name} W{self.weight_bits}A{self.act_bits}"


@dataclass
class AcceleratorReport:
    """Summary of one accelerator evaluation (one row of Table IV)."""

    config_label: str
    model_name: str
    tokens_per_second: float
    latency_ms_per_token: float
    power_w: float
    energy_efficiency_tokens_per_j: float
    resources: ResourceReport
    uram_total: int
    utilisation: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        out = {
            "config": self.config_label,
            "model": self.model_name,
            "tokens_per_s": round(self.tokens_per_second, 2),
            "latency_ms": round(self.latency_ms_per_token, 2),
            "power_w": round(self.power_w, 2),
            "tokens_per_j": round(self.energy_efficiency_tokens_per_j, 3),
            "uram": self.uram_total,
        }
        out.update({f"util_{k}": round(v, 3) for k, v in self.utilisation.items()})
        return out


class LightMambaAccelerator:
    """Analytic decode model of the LightMamba accelerator."""

    def __init__(
        self,
        config: AcceleratorConfig,
        model_config: Mamba2Config,
        power_model: Optional[FPGAPowerModel] = None,
    ):
        self.config = config
        self.model_config = model_config
        self.power_model = power_model or FPGAPowerModel()

        self.mmu = MatrixMultiplyUnit(config.mmu_config())
        self.dram = DramInterface.for_platform(config.platform, config.dram_efficiency)
        self.buffer_model = OnChipBufferModel()

        lanes = None
        lane_scale = config.resolved_ssm_lane_scale()
        if lane_scale != 1:
            from repro.hardware.emu import DEFAULT_SSM_PARALLELISM

            lanes = {
                op: count * lane_scale for op, count in DEFAULT_SSM_PARALLELISM.items()
            }
        self.ssmu = SSMUnit(
            SSMUConfig(
                nheads=model_config.nheads,
                headdim=model_config.headdim,
                d_state=model_config.d_state,
                bits=config.ssm_bits,
                pot_requant=config.ssm_pot_requant,
                parallelism=lanes,
            ),
            buffer_model=self.buffer_model,
        )
        self.htu = (
            HadamardTransformUnit(
                HTUConfig(
                    dim=model_config.d_inner,
                    use_fht=config.use_fht,
                    tiny_mm_lanes=40,
                    bits=min(config.act_bits, 8),
                )
            )
            if config.use_rotation
            else None
        )

    # ------------------------------------------------------------------
    # Per-block phases and schedule
    # ------------------------------------------------------------------
    def block_phases(self) -> BlockPhases:
        """Cycle costs of one Mamba block for a single decode token."""
        cfg = self.config
        m = self.model_config
        overhead = cfg.compute_overhead

        in_compute = self.mmu.gemv_cycles(m.d_model, m.d_in_proj) * overhead
        out_compute = self.mmu.gemv_cycles(m.d_inner, m.d_model) * overhead

        in_bytes = self.mmu.weight_bytes(m.d_model, m.d_in_proj, cfg.group_size)
        out_bytes = self.mmu.weight_bytes(m.d_inner, m.d_model, cfg.group_size)
        other_bytes = self._other_block_bytes()
        in_memory = self.dram.cycles_for_bytes(in_bytes)
        out_memory = self.dram.cycles_for_bytes(out_bytes)
        other_memory = self.dram.cycles_for_bytes(other_bytes)

        conv_cycles = math.ceil(m.conv_dim * m.d_conv / 8) * overhead
        ssm_per_head = self.ssmu.cycles_per_head() * overhead
        htu_cycles = self.htu.transform_cycles() * overhead if self.htu else 0.0

        dbc_fraction = (2 * m.d_bc + m.nheads) / m.d_in_proj
        return BlockPhases(
            in_proj_compute=in_compute,
            in_proj_memory=in_memory,
            out_proj_compute=out_compute,
            out_proj_memory=out_memory,
            conv_cycles=conv_cycles,
            ssm_cycles_per_head=ssm_per_head,
            ssm_head_overhead=24.0,
            nheads=m.nheads,
            htu_cycles=htu_cycles,
            other_memory=other_memory,
            dbc_fraction=dbc_fraction,
        )

    def _other_block_bytes(self) -> float:
        """Non-projection per-block parameters streamed per token (FP16)."""
        m = self.model_config
        return m.block_other_params() * 2.0

    def _head_bytes(self) -> float:
        """LM-head weight bytes streamed per token."""
        m = self.model_config
        bits = self.config.weight_bits if self.config.weight_bits < 16 else 16
        return m.vocab_size * m.d_model * bits / 8.0

    def block_schedule(self) -> BlockSchedule:
        return schedule_block(self.block_phases(), self.config.schedule)

    # ------------------------------------------------------------------
    # Latency / throughput
    # ------------------------------------------------------------------
    def decode_cycles_per_token(self) -> float:
        """Total accelerator cycles to generate one token."""
        m = self.model_config
        schedule = self.block_schedule()
        block_cycles = schedule.total_cycles * m.n_layer

        head_compute = self.mmu.gemv_cycles(m.d_model, m.vocab_size) * self.config.compute_overhead
        head_memory = self.dram.cycles_for_bytes(self._head_bytes())
        head_cycles = max(head_compute, head_memory)
        return block_cycles + head_cycles

    def decode_latency_seconds(self) -> float:
        return self.decode_cycles_per_token() / self.config.platform.frequency_hz

    def tokens_per_second(self) -> float:
        return 1.0 / self.decode_latency_seconds()

    def generation_throughput(self, output_tokens: int, prompt_tokens: int = 64) -> float:
        """End-to-end tokens/s for generating ``output_tokens`` after a prompt.

        Mamba's recurrent state is fixed-size, so the per-token decode cost is
        independent of position; only the (parallelisable) prefill is
        amortised, which is why throughput stays flat with output length
        (Fig. 9a).
        """
        if output_tokens <= 0:
            raise ValueError("output_tokens must be positive")
        decode = self.decode_latency_seconds()
        # Prefill processes the prompt with the same weight stream but reuses
        # it across the whole prompt; approximate it as a single decode pass
        # plus the extra MMU compute for the additional tokens.
        m = self.model_config
        extra_macs = prompt_tokens * m.n_layer * (
            m.d_model * m.d_in_proj + m.d_inner * m.d_model
        )
        prefill = decode + extra_macs / (
            self.mmu.config.effective_macs_per_cycle * self.config.platform.frequency_hz
        )
        total_time = prefill + output_tokens * decode
        return output_tokens / total_time

    # ------------------------------------------------------------------
    # Resources, power, reporting
    # ------------------------------------------------------------------
    def uram_usage(self) -> int:
        """Total URAM blocks (SSMU buffers + staging buffers)."""
        fine = self.config.schedule is ScheduleMode.FINE_GRAINED
        ssmu_uram = self.ssmu.uram_usage(fine_grained=fine)
        staging = self._staging_buffer_allocations()
        return ssmu_uram + sum(a.uram for a in staging)

    def _staging_buffer_allocations(self):
        """Residual / activation staging buffers outside the SSMU."""
        m = self.model_config
        buffers = {
            "residual": m.d_model * 2.0,
            "norm_buffer": m.d_model * 2.0,
            "out_proj_input": m.d_inner * 2.0,
            "logit_buffer": min(m.vocab_size, 4096) * 2.0,
        }
        return self.buffer_model.allocate_many(buffers)

    def resource_report(self) -> ResourceReport:
        """Per-module resource breakdown (Fig. 8 / Table IV)."""
        fine = self.config.schedule is ScheduleMode.FINE_GRAINED
        report = ResourceReport()
        report.add("MMU", self.mmu.resources().rounded())
        report.add("SSMU", self.ssmu.resources().rounded())
        if self.htu is not None:
            report.add("HTU", self.htu.resources().rounded())
        ssmu_buffers = ResourceUsage(
            uram=self.ssmu.uram_usage(fine_grained=fine),
            bram=self.ssmu.bram_usage(fine_grained=fine),
        )
        report.add("SSMU buffers", ssmu_buffers)
        staging = self._staging_buffer_allocations()
        report.add(
            "staging buffers",
            ResourceUsage(
                uram=sum(a.uram for a in staging), bram=sum(a.bram for a in staging)
            ),
        )
        # DMA engines, AXI interconnect, control state machines.
        report.add("DMA + control", ResourceUsage(lut=21_000, ff=30_000, bram=48))
        return report

    def power_w(self) -> float:
        return self.power_model.power(
            self.resource_report().total, self.config.platform.frequency_hz
        )

    def energy_efficiency(self) -> float:
        """Tokens per joule."""
        return self.tokens_per_second() / self.power_w()

    def report(self) -> AcceleratorReport:
        schedule = self.block_schedule()
        return AcceleratorReport(
            config_label=self.config.label,
            model_name=self.model_config.name,
            tokens_per_second=self.tokens_per_second(),
            latency_ms_per_token=self.decode_latency_seconds() * 1e3,
            power_w=self.power_w(),
            energy_efficiency_tokens_per_j=self.energy_efficiency(),
            resources=self.resource_report(),
            uram_total=self.uram_usage(),
            utilisation={
                "mmu": schedule.utilisation("mmu"),
                "ssmu": schedule.utilisation("ssmu"),
                "dram": schedule.utilisation("dram"),
                "bottleneck": schedule.bottleneck_utilisation,
            },
        )
