"""Element-wise Multiplication Units (EMUs) and the SSM re-quantization cost.

The SSMU implements every SSM operator with a dedicated EMU (Fig. 5c).  Each
EMU has a number of parallel lanes; one lane performs one element-wise
multiplication per cycle plus the re-quantization of its output back to the
storage precision.  The re-quantization dominates the cost difference studied
in Fig. 3:

- with an arbitrary (non-PoT) scale, each lane needs an extra DSP multiplier
  and rounding/clamping logic;
- with a power-of-two scale, the re-quantization is a bit shift implemented
  in a few LUTs.

FP16 lanes (the unquantized-SSM baseline of prior works) cost roughly two DSP
slices per lane plus alignment logic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.hardware.dsp import dsps_for_macs
from repro.hardware.resources import ResourceUsage

__all__ = ["EMUConfig", "ElementwiseMultiplyUnit", "ssm_operator_costs", "SSM_OPERATOR_SHAPES"]


# Cost constants per lane (calibrated to the magnitudes reported in Fig. 3).
_LUT_PER_INT_MULT_LANE = 180        # operand registers, control
_LUT_PER_FP16_LANE = 900            # FP16 multiplier built of DSP + LUT glue
_LUT_REQUANT_NON_POT = 950          # multiplier alignment, rounding, clamp
_LUT_REQUANT_POT = 170              # shift + clamp
_FF_PER_LANE = 220
_DSP_REQUANT_NON_POT = 1.0          # rescale multiplier per lane


@dataclass(frozen=True)
class EMUConfig:
    """Configuration of one element-wise multiplication unit.

    Attributes
    ----------
    name:
        Operator name (e.g. ``"B_mul_x"``).
    lanes:
        Parallel multipliers.
    bits:
        Operand precision (8 for the quantized SSM, 16 for the FP baseline).
    pot_requant:
        Whether re-quantization uses power-of-two (shift) scaling.
    requantize:
        Whether the output is re-quantized at all (FP accumulation skips it).
    """

    name: str
    lanes: int
    bits: int = 8
    pot_requant: bool = True
    requantize: bool = True

    def __post_init__(self) -> None:
        if self.lanes <= 0:
            raise ValueError("lanes must be positive")
        if self.bits not in (4, 8, 16):
            raise ValueError("bits must be 4, 8 or 16")


@dataclass(frozen=True)
class ElementwiseMultiplyUnit:
    """Resource and timing model of one EMU."""

    config: EMUConfig

    def resources(self) -> ResourceUsage:
        cfg = self.config
        if cfg.bits == 16:
            dsp = 2.0 * cfg.lanes
            lut = _LUT_PER_FP16_LANE * cfg.lanes
        else:
            dsp = float(dsps_for_macs(cfg.lanes, cfg.bits, cfg.bits))
            lut = _LUT_PER_INT_MULT_LANE * cfg.lanes
        if cfg.requantize and cfg.bits != 16:
            if cfg.pot_requant:
                lut += _LUT_REQUANT_POT * cfg.lanes
            else:
                lut += _LUT_REQUANT_NON_POT * cfg.lanes
                dsp += _DSP_REQUANT_NON_POT * cfg.lanes
        return ResourceUsage(lut=lut, ff=_FF_PER_LANE * cfg.lanes, dsp=dsp)

    def cycles(self, num_elements: int) -> int:
        """Cycles to process ``num_elements`` element-wise products."""
        if num_elements < 0:
            raise ValueError("num_elements must be non-negative")
        return math.ceil(num_elements / self.config.lanes)


#: Element count of each SSM operator per decode token, as a function of the
#: model dimensions ``(nheads h, headdim p, d_state n)`` -- matching the
#: operator boxes of Fig. 1 and the bars of Fig. 3.
SSM_OPERATOR_SHAPES = {
    "delta_mul_A": lambda h, p, n: h,
    "delta_mul_B": lambda h, p, n: h * n,
    "B_mul_x": lambda h, p, n: h * p * n,
    "A_mul_h": lambda h, p, n: h * p * n,
    "h_mul_C": lambda h, p, n: h * p * n,
    "x_mul_D": lambda h, p, n: h * p,
}

#: Default per-operator lane counts of the VCK190 SSMU (Fig. 5c: the small
#: head-sized operators use a single-lane 8-bit EMU, the state-sized
#: operators use two-lane EMUs).  The SSMU is deliberately narrow -- under the
#: reordered schedule it only has to keep up with the DRAM-bound MMU.
DEFAULT_SSM_PARALLELISM = {
    "delta_mul_A": 1,
    "delta_mul_B": 1,
    "B_mul_x": 2,
    "A_mul_h": 2,
    "h_mul_C": 2,
    "x_mul_D": 1,
}

#: Lane counts used for the per-operator cost study of Fig. 3, which sizes
#: each operator's EMU at the throughput needed to keep the SSM off the
#: critical path of a compute-bound design.
FIG3_SSM_PARALLELISM = {
    "delta_mul_A": 8,
    "delta_mul_B": 8,
    "B_mul_x": 16,
    "A_mul_h": 16,
    "h_mul_C": 16,
    "x_mul_D": 8,
}


def ssm_operator_costs(
    bits: int = 8,
    pot_requant: bool = True,
    parallelism: Dict[str, int] | None = None,
) -> Dict[str, ResourceUsage]:
    """Per-operator EMU resource usage (the bars of Fig. 3).

    Parameters
    ----------
    bits:
        Operand precision (8 = quantized SSM, 16 = FP baseline).
    pot_requant:
        Power-of-two re-quantization (the paper's scheme) versus naive
        multiplier-based re-quantization.
    parallelism:
        Optional per-operator lane override; defaults to the Fig. 3 sizing
        (:data:`FIG3_SSM_PARALLELISM`).
    """
    lanes = dict(FIG3_SSM_PARALLELISM)
    if parallelism:
        lanes.update(parallelism)
    costs = {}
    for op in SSM_OPERATOR_SHAPES:
        emu = ElementwiseMultiplyUnit(
            EMUConfig(name=op, lanes=lanes[op], bits=bits, pot_requant=pot_requant)
        )
        costs[op] = emu.resources()
    return costs
