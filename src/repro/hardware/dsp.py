"""DSP-slice cost model with INT8 DSP packing.

The paper's MMU implements ``din x dout`` multiply-accumulates with
``din x dout / 2`` DSP48 slices by packing two low-precision multiplications
that share one operand into a single DSP (Fig. 5b, following the Xilinx INT8
optimisation white paper).  The packing factor is therefore 2 for INT8 and
below; FP16 arithmetic needs roughly two DSP slices per multiplier instead.
"""

from __future__ import annotations

import math

__all__ = ["dsp_packing_factor", "dsps_for_macs", "DSP_PER_FP16_MAC"]

#: Effective DSP slices per sustained FP16 multiply-accumulate when the FP16
#: path is mapped onto the integer-packed MMU datapath: the packing is lost
#: (2x) and the mantissa multiply plus alignment occupies a DSP pair at half
#: the initiation rate (2x), i.e. a quarter of the packed INT8 MAC rate.
DSP_PER_FP16_MAC = 4.0


def dsp_packing_factor(weight_bits: int, act_bits: int) -> float:
    """How many integer MACs one DSP slice performs per cycle.

    Two MACs sharing an activation operand are packed per DSP for widths of
    8 bits and below (the technique the paper uses for both W8A8 and W4A4);
    wider integer formats use one DSP per MAC.
    """
    if weight_bits <= 0 or act_bits <= 0:
        raise ValueError("bit widths must be positive")
    if max(weight_bits, act_bits) <= 8:
        return 2.0
    if max(weight_bits, act_bits) <= 18:
        return 1.0
    return 0.5


def dsps_for_macs(num_macs: int, weight_bits: int, act_bits: int) -> int:
    """DSP slices needed to perform ``num_macs`` MACs per cycle."""
    if num_macs < 0:
        raise ValueError("num_macs must be non-negative")
    if num_macs == 0:
        return 0
    if weight_bits >= 16 and act_bits >= 16:
        return math.ceil(num_macs * DSP_PER_FP16_MAC)
    return math.ceil(num_macs / dsp_packing_factor(weight_bits, act_bits))
