"""FPGA resource accounting (LUT / FF / DSP / BRAM / URAM)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from repro.hardware.platforms import FPGAPlatform

__all__ = ["ResourceUsage", "ResourceReport"]

_FIELDS = ("lut", "ff", "dsp", "bram", "uram")


@dataclass(frozen=True)
class ResourceUsage:
    """Resource consumption of a hardware unit (additive)."""

    lut: float = 0.0
    ff: float = 0.0
    dsp: float = 0.0
    bram: float = 0.0
    uram: float = 0.0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            dsp=self.dsp + other.dsp,
            bram=self.bram + other.bram,
            uram=self.uram + other.uram,
        )

    def scale(self, factor: float) -> "ResourceUsage":
        """Multiply every resource by ``factor`` (e.g. unit replication)."""
        return ResourceUsage(
            lut=self.lut * factor,
            ff=self.ff * factor,
            dsp=self.dsp * factor,
            bram=self.bram * factor,
            uram=self.uram * factor,
        )

    def rounded(self) -> "ResourceUsage":
        """Round every count up to an integer (physical resources are discrete)."""
        import math

        return ResourceUsage(
            lut=math.ceil(self.lut),
            ff=math.ceil(self.ff),
            dsp=math.ceil(self.dsp),
            bram=math.ceil(self.bram),
            uram=math.ceil(self.uram),
        )

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in _FIELDS}

    def utilization(self, platform: FPGAPlatform) -> Dict[str, float]:
        """Fraction of each platform resource consumed."""
        caps = {
            "lut": platform.lut,
            "ff": platform.ff,
            "dsp": platform.dsp,
            "bram": platform.bram,
            "uram": platform.uram,
        }
        return {name: getattr(self, name) / caps[name] for name in _FIELDS}

    def fits(self, platform: FPGAPlatform) -> bool:
        """Whether the usage fits within the platform's budget."""
        return all(frac <= 1.0 for frac in self.utilization(platform).values())

    @classmethod
    def total(cls, usages: Iterable["ResourceUsage"]) -> "ResourceUsage":
        out = cls()
        for usage in usages:
            out = out + usage
        return out


@dataclass
class ResourceReport:
    """Per-module resource breakdown plus the total (Fig. 8 / Table IV)."""

    modules: Dict[str, ResourceUsage] = field(default_factory=dict)

    def add(self, name: str, usage: ResourceUsage) -> None:
        if name in self.modules:
            self.modules[name] = self.modules[name] + usage
        else:
            self.modules[name] = usage

    @property
    def total(self) -> ResourceUsage:
        return ResourceUsage.total(self.modules.values())

    def utilization(self, platform: FPGAPlatform) -> Dict[str, float]:
        return self.total.utilization(platform)

    def rows(self) -> Mapping[str, Dict[str, float]]:
        """Dictionary rows suitable for tabular printing."""
        out = {name: usage.as_dict() for name, usage in self.modules.items()}
        out["total"] = self.total.as_dict()
        return out

    def format_table(self, platform: FPGAPlatform | None = None) -> str:
        """Human-readable fixed-width table of the breakdown."""
        header = f"{'module':<18}" + "".join(f"{f.upper():>10}" for f in _FIELDS)
        lines = [header, "-" * len(header)]
        for name, usage in self.rows().items():
            lines.append(
                f"{name:<18}" + "".join(f"{usage[f]:>10.0f}" for f in _FIELDS)
            )
        if platform is not None:
            util = self.utilization(platform)
            lines.append(
                f"{'utilization %':<18}"
                + "".join(f"{100 * util[f]:>10.1f}" for f in _FIELDS)
            )
        return "\n".join(lines)
