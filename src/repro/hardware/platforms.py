"""Hardware platform specifications (Table IV of the paper).

The FPGA resource totals are the published device capacities; the operating
frequency and memory bandwidth are the values the paper reports for its
implementation (the VCK190 design uses LPDDR at an effective 12 GB/s, the
U280 design uses HBM at 460 GB/s).  GPU platforms record the published memory
bandwidth and the board power observed in the paper's energy numbers
(tokens/J = throughput / power).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

__all__ = [
    "FPGAPlatform",
    "GPUPlatform",
    "VCK190",
    "U280",
    "RTX2070",
    "RTX4090",
    "get_platform",
    "PLATFORMS",
]


@dataclass(frozen=True)
class FPGAPlatform:
    """An FPGA board with its resource budget and memory system.

    Attributes
    ----------
    name:
        Board name.
    frequency_hz:
        Accelerator clock frequency of the paper's implementation.
    dram_bandwidth_bytes_per_s:
        Effective off-chip memory bandwidth available to the accelerator.
    lut, ff, dsp, bram, uram:
        Device resource capacities (LUTs, flip-flops, DSP slices, 36 Kb block
        RAMs, UltraRAMs).
    """

    name: str
    frequency_hz: float
    dram_bandwidth_bytes_per_s: float
    lut: int
    ff: int
    dsp: int
    bram: int
    uram: int

    @property
    def bytes_per_cycle(self) -> float:
        """Peak DRAM bytes deliverable per accelerator clock cycle."""
        return self.dram_bandwidth_bytes_per_s / self.frequency_hz


@dataclass(frozen=True)
class GPUPlatform:
    """A GPU baseline platform.

    ``board_power_w`` is the sustained board power during decode used for the
    paper's tokens/J numbers; ``mem_bandwidth_utilisation`` is the fraction of
    peak bandwidth a single-batch decode kernel achieves in practice.
    """

    name: str
    frequency_hz: float
    dram_bandwidth_bytes_per_s: float
    board_power_w: float
    mem_bandwidth_utilisation: float = 0.75


#: Xilinx Versal VCK190 (VC1902 device) as configured in the paper: 400 MHz,
#: LPDDR with an effective 12 GB/s.
VCK190 = FPGAPlatform(
    name="VCK190",
    frequency_hz=400e6,
    dram_bandwidth_bytes_per_s=12e9,
    lut=899_840,
    ff=1_799_680,
    dsp=1_968,
    bram=967,
    uram=463,
)

#: Xilinx Alveo U280: 200 MHz design clock, HBM2 at an effective 460 GB/s.
U280 = FPGAPlatform(
    name="U280",
    frequency_hz=200e6,
    dram_bandwidth_bytes_per_s=460e9,
    lut=1_303_680,
    ff=2_607_360,
    dsp=9_024,
    bram=2_016,
    uram=960,
)

#: NVIDIA RTX 2070: 448 GB/s-class GDDR6 (468 GB/s effective in Table IV),
#: ~175 W board power during decode (65 tokens/s at 0.371 tokens/J).
RTX2070 = GPUPlatform(
    name="RTX 2070",
    frequency_hz=1.62e9,
    dram_bandwidth_bytes_per_s=468e9,
    board_power_w=175.0,
)

#: NVIDIA RTX 4090: 1008 GB/s GDDR6X, ~285 W board power during decode
#: (138 tokens/s at 0.484 tokens/J).
RTX4090 = GPUPlatform(
    name="RTX 4090",
    frequency_hz=2.52e9,
    dram_bandwidth_bytes_per_s=1008e9,
    board_power_w=285.0,
)


PLATFORMS: Dict[str, Union[FPGAPlatform, GPUPlatform]] = {
    "vck190": VCK190,
    "u280": U280,
    "rtx2070": RTX2070,
    "rtx4090": RTX4090,
}


def get_platform(name: str) -> Union[FPGAPlatform, GPUPlatform]:
    """Look up a platform by (case-insensitive) name."""
    key = name.lower().replace(" ", "").replace("-", "")
    try:
        return PLATFORMS[key]
    except KeyError:
        known = ", ".join(sorted(PLATFORMS))
        raise KeyError(f"unknown platform '{name}'; known platforms: {known}") from None
