"""Hadamard Transform Unit (HTU).

The HTU executes the one online rotation of the quantization algorithm (the
Hadamard transform applied to the output-projection input, rotation (3) of
Fig. 4a).  Two variants are modelled, matching Fig. 5(d)/(e):

- a power-of-two **FHT unit**: the fast Walsh-Hadamard butterfly network with
  ``log2(n)`` pipeline stages, each containing a butterfly core and two
  half-block FIFOs.  Compared to computing the same transform as a matrix
  multiplication with the same arithmetic resources, the paper reports a 72%
  latency reduction -- reproduced by :func:`matrix_hadamard_latency` versus
  :meth:`HadamardTransformUnit.transform_cycles`.
- a **non-power-of-two unit** (e.g. the 40-point transform of Mamba2-2.7B,
  whose inner dimension factors as 128 x 40): a small dense
  multiply-accumulate array with one operand fixed to the +-1 Hadamard
  matrix.

The composite transform of a ``d_inner``-wide activation is executed as the
Kronecker factorisation: FHT over the power-of-two factor followed by the
small dense transform over the residual factor (mirroring
:func:`repro.quant.hadamard.apply_hadamard`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.dsp import dsps_for_macs
from repro.hardware.pipeline import LinearPipeline, PipelineStage
from repro.hardware.resources import ResourceUsage
from repro.quant.hadamard import decompose_hadamard_order

__all__ = ["HTUConfig", "HadamardTransformUnit", "matrix_hadamard_latency"]

_LUT_PER_BUTTERFLY = 320      # two wide adders + routing muxes
_FF_PER_BUTTERFLY = 140
_BRAM_PER_STAGE = 2           # the two half-block FIFOs of Fig. 5(d)
_LUT_PER_TINY_MAC = 22        # +-1 "multiplier" reduces to add/subtract
_FF_PER_TINY_MAC = 10


@dataclass(frozen=True)
class HTUConfig:
    """Configuration of the Hadamard transform unit.

    Attributes
    ----------
    dim:
        Transform length (the width of the out-proj input, ``d_inner``).
    use_fht:
        Use the butterfly FHT for the power-of-two factor; ``False`` models
        the naive matrix-multiplication implementation (the "+Rotation Quant"
        step of the Fig. 10 ablation, before "+FHT").
    butterflies_per_stage:
        Parallel butterfly cores per FHT stage (each processes one element
        pair per cycle).
    tiny_mm_lanes:
        MAC lanes of the non-power-of-two dense unit.
    bits:
        Data precision flowing through the unit.
    """

    dim: int
    use_fht: bool = True
    butterflies_per_stage: int = 1
    tiny_mm_lanes: int = 40
    bits: int = 8

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ValueError("dim must be positive")
        if self.butterflies_per_stage <= 0 or self.tiny_mm_lanes <= 0:
            raise ValueError("parallelism parameters must be positive")
        # Validate that the dimension is decomposable at construction time.
        decompose_hadamard_order(self.dim)


@dataclass(frozen=True)
class HadamardTransformUnit:
    """Resource and timing model of the HTU."""

    config: HTUConfig

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def pow2_factor(self) -> int:
        return decompose_hadamard_order(self.config.dim)[0]

    @property
    def base_factor(self) -> int:
        return decompose_hadamard_order(self.config.dim)[1]

    @property
    def num_stages(self) -> int:
        """Butterfly stages of the FHT part (7 for the 128-point unit)."""
        return int(math.log2(self.pow2_factor)) if self.pow2_factor > 1 else 0

    # ------------------------------------------------------------------
    # Resources
    # ------------------------------------------------------------------
    def resources(self) -> ResourceUsage:
        cfg = self.config
        usage = ResourceUsage()
        if cfg.use_fht and self.num_stages > 0:
            per_stage = ResourceUsage(
                lut=_LUT_PER_BUTTERFLY * cfg.butterflies_per_stage,
                ff=_FF_PER_BUTTERFLY * cfg.butterflies_per_stage,
                bram=_BRAM_PER_STAGE,
            )
            usage = usage + per_stage.scale(self.num_stages)
        else:
            # Matrix-multiply implementation of the power-of-two factor uses
            # the tiny MAC array as well.
            usage = usage + ResourceUsage(
                lut=_LUT_PER_TINY_MAC * cfg.tiny_mm_lanes,
                ff=_FF_PER_TINY_MAC * cfg.tiny_mm_lanes,
                dsp=dsps_for_macs(cfg.tiny_mm_lanes, cfg.bits, cfg.bits),
            )
        if self.base_factor > 1:
            usage = usage + ResourceUsage(
                lut=_LUT_PER_TINY_MAC * cfg.tiny_mm_lanes,
                ff=_FF_PER_TINY_MAC * cfg.tiny_mm_lanes,
                dsp=dsps_for_macs(cfg.tiny_mm_lanes, cfg.bits, cfg.bits),
                bram=2,
            )
        return usage

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def fht_block_cycles(self) -> int:
        """Pipeline-fill latency of one power-of-two FHT block.

        A stage must buffer the first half of its block (``pow2 / 2``
        elements, arriving at ``2 x butterflies`` per cycle) before its
        butterflies can start pairing elements, so each stage adds
        ``pow2 / (4 x butterflies)`` cycles of fill; the stages then stream.
        """
        pow2 = self.pow2_factor
        if pow2 <= 1:
            return 0
        per_stage = math.ceil(pow2 / (4 * self.config.butterflies_per_stage))
        return per_stage * self.num_stages

    def transform_cycles(self, vectors: int = 1) -> int:
        """Cycles to rotate ``vectors`` activation vectors of length ``dim``.

        The FHT part sustains ``2 * butterflies_per_stage`` elements per cycle
        once the pipeline is filled; the non-power-of-two factor is executed
        on the dense array at ``tiny_mm_lanes`` MACs per cycle.  The naive
        matrix-multiplication variant instead performs ``dim^2`` MACs on the
        dense array.
        """
        if vectors <= 0:
            raise ValueError("vectors must be positive")
        cfg = self.config
        dim = cfg.dim
        pow2 = self.pow2_factor
        base = self.base_factor

        if not cfg.use_fht:
            total_macs = dim * dim * vectors
            return math.ceil(total_macs / cfg.tiny_mm_lanes)

        cycles = 0
        if pow2 > 1:
            throughput = 2 * cfg.butterflies_per_stage
            steady = math.ceil(dim * vectors / throughput)
            fill = self.fht_block_cycles()
            cycles += steady + fill
        if base > 1:
            # Every output element of the base transform is a length-`base`
            # +-1 dot product.
            total_macs = dim * base * vectors
            cycles += math.ceil(total_macs / cfg.tiny_mm_lanes)
        return cycles

    def simulate_fht_pipeline(self, vectors: int = 1, fifo_capacity: int | None = None):
        """Tick-accurate simulation of the FHT stage pipeline (Fig. 5d).

        Returns a :class:`repro.hardware.pipeline.PipelineResult`; used by
        tests to validate the analytic :meth:`transform_cycles` model and the
        FIFO sizing (each stage needs only half-block buffering).
        """
        if self.num_stages == 0:
            raise ValueError("the FHT pipeline needs a power-of-two factor > 1")
        rate = 2 * self.config.butterflies_per_stage
        capacity = fifo_capacity or max(self.pow2_factor, rate)
        # Each stage holds half a block before it can emit (Fig. 5d): model it
        # as the stage's issue-to-output latency.
        half_block_latency = max(1, self.pow2_factor // (2 * rate))
        stages = [
            PipelineStage(name=f"stage{i}", rate=rate, latency=half_block_latency)
            for i in range(self.num_stages)
        ]
        pipeline = LinearPipeline(stages, fifo_capacity=capacity)
        elements = self.pow2_factor * vectors * max(self.config.dim // self.pow2_factor, 1)
        return pipeline.run(elements, source_rate=rate)


def matrix_hadamard_latency(dim: int, macs_per_cycle: int) -> int:
    """Latency of computing an ``dim``-point Hadamard transform as a dense
    matrix-vector product with ``macs_per_cycle`` multiply-accumulators.

    Used to reproduce the paper's claim that the FHT implementation reduces
    latency by ~72% relative to the matrix-multiply implementation with the
    same hardware resources.
    """
    if dim <= 0 or macs_per_cycle <= 0:
        raise ValueError("dim and macs_per_cycle must be positive")
    return math.ceil(dim * dim / macs_per_cycle)
