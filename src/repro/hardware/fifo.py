"""A simple FIFO model for the tick-accurate pipeline simulations.

The SSMU connects its operator units through FIFOs (Fig. 5c); the HTU stages
likewise buffer half-blocks of the butterfly network (Fig. 5d).  The model
tracks occupancy so pipeline-balance tests can verify that the chosen
per-operator parallelism keeps FIFO depths small (the paper: "a balanced data
flow with a minimum FIFO depth").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Fifo"]


@dataclass
class Fifo:
    """Bounded FIFO tracking element counts (not values).

    Attributes
    ----------
    name:
        Identifier used in reports.
    capacity:
        Maximum number of elements held.
    """

    name: str
    capacity: int
    occupancy: int = 0
    max_occupancy: int = 0
    total_pushed: int = 0
    total_popped: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("FIFO capacity must be positive")

    @property
    def free_space(self) -> int:
        return self.capacity - self.occupancy

    @property
    def is_empty(self) -> bool:
        return self.occupancy == 0

    @property
    def is_full(self) -> bool:
        return self.occupancy >= self.capacity

    def push(self, count: int = 1) -> int:
        """Push up to ``count`` elements; returns how many were accepted."""
        if count < 0:
            raise ValueError("count must be non-negative")
        accepted = min(count, self.free_space)
        self.occupancy += accepted
        self.total_pushed += accepted
        self.max_occupancy = max(self.max_occupancy, self.occupancy)
        return accepted

    def pop(self, count: int = 1) -> int:
        """Pop up to ``count`` elements; returns how many were removed."""
        if count < 0:
            raise ValueError("count must be non-negative")
        removed = min(count, self.occupancy)
        self.occupancy -= removed
        self.total_popped += removed
        return removed

    def reset(self) -> None:
        self.occupancy = 0
        self.max_occupancy = 0
        self.total_pushed = 0
        self.total_popped = 0
