"""Matrix Multiplication Unit (MMU).

The MMU (Fig. 5b) serves the input and output projections in a
time-multiplexed manner.  It accepts an activation vector of ``din`` elements
per cycle and produces partial sums for ``dout`` output lanes, i.e.
``din x dout`` MACs per cycle, implemented with ``din x dout / 2`` DSP slices
through DSP packing.  Weights stream from off-chip DRAM tile by tile and are
double-buffered so the transfer overlaps with computation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.dsp import dsps_for_macs
from repro.hardware.resources import ResourceUsage

__all__ = ["MMUConfig", "MatrixMultiplyUnit"]

# Per-MAC logic for operand distribution and the adder tree.
_LUT_PER_MAC = 14
_FF_PER_MAC = 18
# Double-buffered weight tile storage (BRAM blocks per 32 output lanes).
_BRAM_PER_TILE_LANE = 0.5


@dataclass(frozen=True)
class MMUConfig:
    """Shape and precision of the MMU.

    Attributes
    ----------
    din:
        Activation elements consumed per cycle (adder-tree width).
    dout:
        Output lanes computed in parallel.
    weight_bits / act_bits:
        Operating precision.  Integer precisions up to 8 bits use DSP packing;
        FP16 activations disable packing and cost two DSPs per MAC, reducing
        the sustainable MAC rate for a fixed DSP budget.
    """

    din: int = 64
    dout: int = 2
    weight_bits: int = 4
    act_bits: int = 4

    def __post_init__(self) -> None:
        if self.din <= 0 or self.dout <= 0:
            raise ValueError("din and dout must be positive")
        if self.weight_bits <= 0 or self.act_bits <= 0:
            raise ValueError("bit widths must be positive")

    @property
    def native_macs_per_cycle(self) -> int:
        """MAC units instantiated (integer, packed)."""
        return self.din * self.dout

    @property
    def dsp_count(self) -> int:
        """DSP slices of the integer-packed implementation."""
        return dsps_for_macs(
            self.native_macs_per_cycle, min(self.weight_bits, 8), min(self.act_bits, 8)
        )

    @property
    def effective_macs_per_cycle(self) -> float:
        """Sustained MACs per cycle at the configured precision.

        The DSP budget is fixed by the integer-packed design; running FP16
        activations through the same budget costs two DSPs per MAC and no
        packing, i.e. a 4x lower MAC rate.
        """
        if max(self.weight_bits, self.act_bits) <= 8:
            return float(self.native_macs_per_cycle)
        from repro.hardware.dsp import DSP_PER_FP16_MAC

        return self.dsp_count / DSP_PER_FP16_MAC


@dataclass(frozen=True)
class MatrixMultiplyUnit:
    """Resource and timing model of the MMU."""

    config: MMUConfig
    pipeline_depth: int = 8   # adder tree + accumulate register stages

    def resources(self) -> ResourceUsage:
        macs = self.config.native_macs_per_cycle
        return ResourceUsage(
            lut=_LUT_PER_MAC * macs,
            ff=_FF_PER_MAC * macs,
            dsp=self.config.dsp_count,
            bram=math.ceil(self.config.dout * _BRAM_PER_TILE_LANE) * 2,  # double buffer
        )

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def gemv_cycles(self, in_features: int, out_features: int) -> int:
        """Cycles to multiply a single activation vector by a weight matrix.

        The matrix is tiled into ``din x dout`` tiles; one tile is consumed
        per cycle.  A short pipeline-fill latency is added once.
        """
        if in_features <= 0 or out_features <= 0:
            raise ValueError("matrix dimensions must be positive")
        cfg = self.config
        in_tiles = math.ceil(in_features / cfg.din)
        out_tiles = math.ceil(out_features / cfg.dout)
        total_macs = in_features * out_features
        # Integer precisions sustain one tile per cycle; FP16 activations
        # reduce the sustained MAC rate for the same DSP budget.
        tile_cycles = in_tiles * out_tiles
        rate_penalty = cfg.native_macs_per_cycle / cfg.effective_macs_per_cycle
        return math.ceil(tile_cycles * rate_penalty) + self.pipeline_depth

    def gemm_cycles(self, tokens: int, in_features: int, out_features: int) -> int:
        """Cycles for a batch of ``tokens`` activation vectors (prefill)."""
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        single = self.gemv_cycles(in_features, out_features) - self.pipeline_depth
        return single * tokens + self.pipeline_depth

    # ------------------------------------------------------------------
    # Weight streaming
    # ------------------------------------------------------------------
    def weight_bytes(
        self, in_features: int, out_features: int, group_size: int = 128
    ) -> float:
        """Off-chip bytes of one weight matrix: integer codes + FP16 scales.

        8-bit weights carry one scale per output channel, narrower weights one
        scale per ``group_size`` input elements per channel (Sec. VI-A).
        """
        bits = self.config.weight_bits
        codes = in_features * out_features * bits / 8.0
        if bits >= 16:
            return in_features * out_features * 2.0
        if bits >= 8:
            scales = out_features * 2.0
        else:
            scales = out_features * math.ceil(in_features / group_size) * 2.0
        return codes + scales
