"""LightMamba reproduction.

A from-scratch Python reproduction of *LightMamba: Efficient Mamba Acceleration
on FPGA with Quantization and Hardware Co-design* (DATE 2025).

The package is organised as:

- :mod:`repro.mamba` -- the Mamba2 model substrate (numpy implementation of the
  embedding, Mamba2 blocks, SSM recurrence, gated RMSNorm and LM head, with
  prefill and autoregressive decode).
- :mod:`repro.quant` -- the post-training quantization stack: integer
  quantizers, RTN / SmoothQuant / OutlierSuppression+ baselines, the
  rotation-assisted quantization algorithm (Hadamard construction, fusion,
  online Hadamard transform) and the power-of-two SSM quantization.
- :mod:`repro.hardware` -- the FPGA accelerator model: MMU / SSMU / HTU units,
  cycle-level pipeline simulation, scheduling (computation reordering,
  fine-grained tiling and fusion), memory and power models, GPU and prior-art
  accelerator baselines.
- :mod:`repro.serving` -- batched inference on top of the decode path: a
  vectorized batch generator and a continuous-batching engine that admits and
  retires requests against a fixed pool of batch slots.
- :mod:`repro.eval` -- synthetic calibration / evaluation data, perplexity and
  zero-shot task harness, quantization-error metrics.
- :mod:`repro.core` -- the co-design configuration, end-to-end pipeline and the
  ablation driver.
- :mod:`repro.bench` -- generators for every table and figure of the paper's
  evaluation section (used by ``benchmarks/`` and ``examples/``).
"""

from repro.version import __version__

__all__ = ["__version__"]
