"""The Fig. 10 ablation: adding LightMamba's techniques one at a time.

Starting from an FP16 Mamba running on a naive sequential FPGA design, the
ablation adds, in the paper's order:

1. 4-bit weight quantization,
2. 4-bit activation quantization (with the INT8 PoT SSM),
3. rotation-assisted quantization with a naive matrix-multiply Hadamard,
4. the FHT-based HTU,
5. computation reordering (coarse-grained pipeline),
6. fine-grained tiling and fusion.

Each step is described by the accelerator-configuration overrides it applies
and, for the accuracy column, by the quantization method / precision whose
accuracy it corresponds to.  The hardware part of the ablation is cheap (the
analytic model); the accuracy part requires evaluating quantized models on
the reference setup and is therefore optional.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hardware.accelerator import AcceleratorConfig, LightMambaAccelerator
from repro.hardware.platforms import VCK190
from repro.hardware.scheduler import ScheduleMode
from repro.mamba.config import Mamba2Config, get_preset
from repro.quant.qmodel import QuantConfig, QuantMethod

__all__ = ["AblationStep", "AblationResult", "ABLATION_STEPS", "run_hardware_ablation"]


@dataclass(frozen=True)
class AblationStep:
    """One row of Fig. 10.

    ``accelerator_overrides`` are applied on top of the base VCK190
    configuration; ``quant`` names the quantization configuration whose
    accuracy the row reports (``None`` = the FP16 baseline).
    """

    name: str
    accelerator_overrides: Dict[str, object]
    quant: Optional[QuantConfig] = None
    paper_tokens_per_s: Optional[float] = None
    paper_accuracy: Optional[float] = None
    paper_uram: Optional[int] = None


#: The Fig. 10 steps with the paper's reported operating points attached
#: (throughput on VCK190 in tokens/s, average zero-shot accuracy in %, URAM).
ABLATION_STEPS: List[AblationStep] = [
    AblationStep(
        name="Original network (FP16)",
        accelerator_overrides=dict(
            weight_bits=16, act_bits=16, ssm_bits=16,
            use_rotation=False, schedule=ScheduleMode.SEQUENTIAL,
        ),
        quant=None,
        paper_tokens_per_s=2.23, paper_accuracy=60.2, paper_uram=228,
    ),
    AblationStep(
        name="+ 4-bit weight quantization",
        accelerator_overrides=dict(
            weight_bits=4, act_bits=16, ssm_bits=16,
            use_rotation=False, schedule=ScheduleMode.SEQUENTIAL,
        ),
        quant=QuantConfig(method=QuantMethod.RTN, w_bits=4, a_bits=16),
        paper_tokens_per_s=3.19, paper_accuracy=57.6, paper_uram=228,
    ),
    AblationStep(
        name="+ 4-bit activation quantization",
        accelerator_overrides=dict(
            weight_bits=4, act_bits=4, ssm_bits=8,
            use_rotation=False, schedule=ScheduleMode.SEQUENTIAL,
        ),
        quant=QuantConfig.w4a4(QuantMethod.RTN),
        paper_tokens_per_s=5.32, paper_accuracy=51.6, paper_uram=226,
    ),
    AblationStep(
        name="+ rotation quantization (MM Hadamard)",
        accelerator_overrides=dict(
            use_rotation=True, use_fht=False, schedule=ScheduleMode.SEQUENTIAL,
        ),
        quant=QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR),
        paper_tokens_per_s=2.92, paper_accuracy=55.9, paper_uram=262,
    ),
    AblationStep(
        name="+ fast Hadamard transform unit",
        accelerator_overrides=dict(
            use_rotation=True, use_fht=True, schedule=ScheduleMode.SEQUENTIAL,
        ),
        quant=QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR),
        paper_tokens_per_s=5.04, paper_accuracy=55.9, paper_uram=246,
    ),
    AblationStep(
        name="+ computation reordering",
        accelerator_overrides=dict(
            use_rotation=True, use_fht=True, schedule=ScheduleMode.REORDERED,
        ),
        quant=QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR),
        paper_tokens_per_s=7.21, paper_accuracy=55.9, paper_uram=246,
    ),
    AblationStep(
        name="+ fine-grained tiling and fusion",
        accelerator_overrides=dict(
            use_rotation=True, use_fht=True, schedule=ScheduleMode.FINE_GRAINED,
        ),
        quant=QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR),
        paper_tokens_per_s=7.21, paper_accuracy=55.9, paper_uram=61,
    ),
]


@dataclass
class AblationResult:
    """Measured values of one ablation step."""

    step: AblationStep
    tokens_per_second: float
    uram: int
    accuracy: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "step": self.step.name,
            "tokens_per_s": round(self.tokens_per_second, 2),
            "uram": self.uram,
        }
        if self.step.paper_tokens_per_s is not None:
            row["paper_tokens_per_s"] = self.step.paper_tokens_per_s
        if self.step.paper_uram is not None:
            row["paper_uram"] = self.step.paper_uram
        if self.accuracy is not None:
            row["accuracy_%"] = round(100.0 * self.accuracy, 1)
        if self.step.paper_accuracy is not None:
            row["paper_accuracy_%"] = self.step.paper_accuracy
        return row


def run_hardware_ablation(
    model_config: Optional[Mamba2Config] = None,
    base_config: Optional[AcceleratorConfig] = None,
    accuracies: Optional[Dict[str, float]] = None,
) -> List[AblationResult]:
    """Evaluate the hardware side of every ablation step.

    Parameters
    ----------
    model_config:
        Target model (defaults to Mamba2-2.7B, as in the paper).
    base_config:
        Base accelerator configuration the step overrides are applied to
        (defaults to the VCK190 design).
    accuracies:
        Optional mapping from step name to measured average task accuracy
        (produced by the Table III machinery on the reference setup); attached
        to the corresponding rows when present.
    """
    model_config = model_config or get_preset("mamba2-2.7b")
    base_config = base_config or AcceleratorConfig(platform=VCK190)
    accuracies = accuracies or {}
    results = []
    for step in ABLATION_STEPS:
        config = base_config.with_overrides(**step.accelerator_overrides)
        accelerator = LightMambaAccelerator(config, model_config)
        results.append(
            AblationResult(
                step=step,
                tokens_per_second=accelerator.tokens_per_second(),
                uram=accelerator.uram_usage(),
                accuracy=accuracies.get(step.name),
            )
        )
    return results
