"""End-to-end co-design pipeline.

:class:`LightMambaPipeline` ties the two halves of the reproduction together:

1. *algorithm side*: quantize a (synthetic) Mamba2 model with the configured
   PTQ method and measure its fidelity against the floating-point reference
   (KL divergence, top-1 agreement, task accuracy when a task suite is
   supplied);
2. *hardware side*: instantiate the accelerator for the full-size target
   model and report throughput, energy efficiency and resource usage.

The combined :class:`CoDesignReport` is what the examples print and what the
Table IV / Fig. 9 benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.config import CoDesignConfig
from repro.eval.harness import EvaluationReport, evaluate_model
from repro.eval.metrics import mean_kl_divergence, top1_agreement
from repro.eval.reference import ReferenceSetup
from repro.hardware.accelerator import AcceleratorReport, LightMambaAccelerator
from repro.mamba.model import Mamba2Model
from repro.quant.qmodel import quantize_model

__all__ = ["CoDesignReport", "LightMambaPipeline"]


@dataclass
class CoDesignReport:
    """Combined algorithm + hardware evaluation of one design point."""

    config_label: str
    hardware: AcceleratorReport
    fidelity: Dict[str, float] = field(default_factory=dict)
    evaluation: Optional[EvaluationReport] = None

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {"config": self.config_label}
        row.update(self.hardware.as_dict())
        row.update({f"fid_{k}": round(v, 4) for k, v in self.fidelity.items()})
        if self.evaluation is not None:
            row.update(self.evaluation.as_row())
        return row


class LightMambaPipeline:
    """Quantize-and-deploy pipeline for one :class:`CoDesignConfig`."""

    def __init__(self, config: CoDesignConfig):
        self.config = config

    # ------------------------------------------------------------------
    # Algorithm side
    # ------------------------------------------------------------------
    def quantize(
        self,
        model: Mamba2Model,
        calibration=None,
        calib_sequences: Optional[Sequence[np.ndarray]] = None,
    ) -> Mamba2Model:
        """Quantize ``model`` with the configured PTQ method."""
        return quantize_model(
            model, self.config.quant, calibration=calibration, calib_sequences=calib_sequences
        )

    def fidelity(
        self,
        reference: Mamba2Model,
        quantized: Mamba2Model,
        sequences: Sequence[np.ndarray],
    ) -> Dict[str, float]:
        """Distribution-fidelity metrics of the quantized model."""
        return {
            "kl_divergence": mean_kl_divergence(reference, quantized, sequences),
            "top1_agreement": top1_agreement(reference, quantized, sequences),
        }

    # ------------------------------------------------------------------
    # Hardware side
    # ------------------------------------------------------------------
    def accelerator(self) -> LightMambaAccelerator:
        """The accelerator sized for the full target model."""
        return LightMambaAccelerator(self.config.accelerator, self.config.model_config)

    # ------------------------------------------------------------------
    # Combined
    # ------------------------------------------------------------------
    def run(
        self, setup: Optional[ReferenceSetup] = None, evaluate_tasks: bool = False
    ) -> CoDesignReport:
        """Produce the combined report.

        Parameters
        ----------
        setup:
            Optional reference evaluation setup; when given, the quantization
            method is applied to the setup's synthetic model and fidelity
            metrics (and optionally task accuracy) are included.
        evaluate_tasks:
            Also run the synthetic zero-shot task suite (slower).
        """
        hardware_report = self.accelerator().report()
        fidelity: Dict[str, float] = {}
        evaluation = None
        if setup is not None:
            quantized = self.quantize(setup.model, calibration=setup.calibration)
            fidelity = self.fidelity(setup.model, quantized, setup.evaluation_sequences)
            if evaluate_tasks:
                evaluation = evaluate_model(
                    quantized, setup.tasks, label=self.config.quant.label
                )
        return CoDesignReport(
            config_label=self.config.label,
            hardware=hardware_report,
            fidelity=fidelity,
            evaluation=evaluation,
        )
