"""LightMamba co-design: the algorithm/hardware configurations tied together.

The paper's contribution is the *co-design* of the quantization algorithm and
the FPGA accelerator: the rotation-assisted + PoT quantization makes 4-bit
inference accurate, and the accelerator (HTU, computation reordering,
fine-grained tiling) makes exactly that quantization scheme fast.  This
package exposes that pairing as a single object:

- :class:`repro.core.config.CoDesignConfig` -- one configuration naming the
  model, the quantization scheme and the accelerator design point, with the
  paper's published design points as presets;
- :class:`repro.core.pipeline.LightMambaPipeline` -- quantizes a model,
  instantiates the matching accelerator and produces a combined report
  (accuracy fidelity + throughput + energy + resources);
- :mod:`repro.core.ablation` -- the Fig. 10 ablation driver that switches the
  individual techniques on one by one.
"""

from repro.core.config import CoDesignConfig
from repro.core.pipeline import CoDesignReport, LightMambaPipeline
from repro.core.ablation import AblationStep, AblationResult, ABLATION_STEPS, run_hardware_ablation

__all__ = [
    "CoDesignConfig",
    "CoDesignReport",
    "LightMambaPipeline",
    "AblationStep",
    "AblationResult",
    "ABLATION_STEPS",
    "run_hardware_ablation",
]
