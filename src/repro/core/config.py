"""Co-design configuration: model + quantization + accelerator in one place."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hardware.accelerator import AcceleratorConfig
from repro.hardware.platforms import U280, VCK190
from repro.hardware.scheduler import ScheduleMode
from repro.mamba.config import Mamba2Config, get_preset
from repro.quant.qmodel import QuantConfig, QuantMethod

__all__ = ["CoDesignConfig"]


@dataclass(frozen=True)
class CoDesignConfig:
    """One LightMamba design point.

    Attributes
    ----------
    model_preset:
        Name of the Mamba2 model the accelerator is sized for (the paper's
        headline design targets ``mamba2-2.7b``).
    quant:
        The PTQ configuration applied to the model.
    accelerator:
        The FPGA design point.  Its precision fields are kept consistent with
        the quantization configuration by :meth:`__post_init__`.
    """

    model_preset: str = "mamba2-2.7b"
    quant: QuantConfig = field(
        default_factory=lambda: QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR)
    )
    accelerator: AcceleratorConfig = field(default_factory=AcceleratorConfig)

    def __post_init__(self) -> None:
        get_preset(self.model_preset)  # validate the preset name early
        synced = self.accelerator.with_overrides(
            weight_bits=self.quant.w_bits,
            act_bits=self.quant.a_bits,
            group_size=self.quant.group_size,
            use_rotation=self.quant.method.uses_rotation,
            ssm_bits=self.quant.ssm.bits if self.quant.method.quantizes_ssm else 16,
            ssm_pot_requant=self.quant.ssm.pot_scale,
        )
        object.__setattr__(self, "accelerator", synced)

    # ------------------------------------------------------------------
    # Published design points (Table IV)
    # ------------------------------------------------------------------
    @classmethod
    def vck190_w4a4(cls, model_preset: str = "mamba2-2.7b") -> "CoDesignConfig":
        """The headline VCK190 design: W4A4 rotation-assisted + PoT SSM."""
        return cls(
            model_preset=model_preset,
            quant=QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR),
            accelerator=AcceleratorConfig(platform=VCK190, schedule=ScheduleMode.FINE_GRAINED),
        )

    @classmethod
    def vck190_w8a8(cls, model_preset: str = "mamba2-2.7b") -> "CoDesignConfig":
        """The W8A8 VCK190 design point of Table IV."""
        return cls(
            model_preset=model_preset,
            quant=QuantConfig.w8a8(QuantMethod.LIGHTMAMBA_STAR),
            accelerator=AcceleratorConfig(platform=VCK190, schedule=ScheduleMode.FINE_GRAINED),
        )

    @classmethod
    def u280_w4a4(cls, model_preset: str = "mamba2-2.7b") -> "CoDesignConfig":
        """The HBM-based U280 design point evaluated with the simulator."""
        return cls(
            model_preset=model_preset,
            quant=QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR),
            accelerator=AcceleratorConfig(platform=U280, schedule=ScheduleMode.FINE_GRAINED),
        )

    # ------------------------------------------------------------------
    # Derived
    # ------------------------------------------------------------------
    @property
    def model_config(self) -> Mamba2Config:
        return get_preset(self.model_preset)

    @property
    def label(self) -> str:
        return f"{self.model_preset} | {self.quant.label} | {self.accelerator.label}"

    def with_quant(self, quant: QuantConfig) -> "CoDesignConfig":
        return replace(self, quant=quant)

    def with_accelerator(self, **overrides) -> "CoDesignConfig":
        return replace(self, accelerator=self.accelerator.with_overrides(**overrides))
