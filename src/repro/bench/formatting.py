"""Plain-text formatting of benchmark rows and series."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_rows", "format_series"]


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_rows(
    rows: Sequence[Dict[str, object]],
    title: Optional[str] = None,
    columns: Optional[List[str]] = None,
) -> str:
    """Render a list of dictionaries as an aligned fixed-width table."""
    if not rows:
        return title or ""
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for line in cells:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(
    series: Dict[str, Dict[object, float]],
    x_label: str = "x",
    title: Optional[str] = None,
) -> str:
    """Render named series (e.g. throughput vs sequence length) as a table.

    ``series`` maps a series name to ``{x: y}``; all x values are merged into
    a single column.
    """
    xs: List[object] = []
    for values in series.values():
        for x in values:
            if x not in xs:
                xs.append(x)
    rows = []
    for x in xs:
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            if x in values:
                row[name] = values[x]
        rows.append(row)
    return format_rows(rows, title=title)
