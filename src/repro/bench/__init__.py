"""Table and figure generators for the paper's evaluation section.

Every table and figure of the LightMamba evaluation (Sec. VI) has a generator
here that returns plain-Python rows / series (lists of dictionaries), plus a
text formatter.  The ``benchmarks/`` directory wraps these generators with
pytest-benchmark so that ``pytest benchmarks/ --benchmark-only`` regenerates
the whole evaluation; the ``examples/`` scripts reuse the same generators for
interactive exploration.
"""

from repro.bench.formatting import format_rows, format_series
from repro.bench.tables import (
    table1_architecture_comparison,
    table2_quant_error,
    table3_accuracy,
    table4_hardware,
)
from repro.bench.figures import (
    fig2_activation_distribution,
    fig3_ssm_requant_cost,
    fig4b_fusion_error,
    fig6_pipeline_schedules,
    fig7_tiling_uram,
    fig9a_throughput_vs_seqlen,
    fig9b_energy_efficiency,
    fig10_ablation,
)

__all__ = [
    "format_rows",
    "format_series",
    "table1_architecture_comparison",
    "table2_quant_error",
    "table3_accuracy",
    "table4_hardware",
    "fig2_activation_distribution",
    "fig3_ssm_requant_cost",
    "fig4b_fusion_error",
    "fig6_pipeline_schedules",
    "fig7_tiling_uram",
    "fig9a_throughput_vs_seqlen",
    "fig9b_energy_efficiency",
    "fig10_ablation",
]
