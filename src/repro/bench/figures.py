"""Generators for the paper's figures (2, 3, 4b, 6, 7, 9a, 9b, 10)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.ablation import AblationResult, ABLATION_STEPS, run_hardware_ablation
from repro.eval.harness import evaluate_model
from repro.eval.reference import ReferenceSetup, build_reference_setup
from repro.hardware.accelerator import AcceleratorConfig, LightMambaAccelerator
from repro.hardware.baselines import DFX, FLIGHTLLM
from repro.hardware.emu import ssm_operator_costs
from repro.hardware.gpu import GPUDecodeModel
from repro.hardware.platforms import RTX2070, RTX4090, U280, VCK190
from repro.hardware.scheduler import ScheduleMode
from repro.mamba.config import get_preset
from repro.quant.error import quantization_error
from repro.quant.hadamard import apply_hadamard
from repro.quant.qmodel import quantize_model
from repro.quant.rotation import RotationConfig, rotate_model
from repro.quant.rtn import rtn_quantize_weight

__all__ = [
    "fig2_activation_distribution",
    "fig3_ssm_requant_cost",
    "fig4b_fusion_error",
    "fig6_pipeline_schedules",
    "fig7_tiling_uram",
    "fig9a_throughput_vs_seqlen",
    "fig9b_energy_efficiency",
    "fig10_ablation",
]


def fig2_activation_distribution(
    setup: Optional[ReferenceSetup] = None,
    layer: Optional[int] = None,
    num_bins: int = 40,
) -> Dict[str, object]:
    """Fig. 2: out-proj activation distribution before and after rotation.

    Returns histogram arrays plus the summary statistics that characterise
    the scattered-outlier phenomenon: peak-to-RMS ratio, kurtosis, and how
    many distinct channels host the per-token maximum (scattered outliers
    move between channels; after rotation the distribution is near-Gaussian).
    """
    setup = setup or build_reference_setup()
    layer = setup.config.n_layer // 2 if layer is None else layer

    chunks = []
    for seq in setup.evaluation_sequences:
        collect: list = []
        setup.model.forward(seq, collect=collect)
        chunks.append(collect[layer]["out_proj_input"])
    before = np.concatenate(chunks, axis=0)
    after = apply_hadamard(before)

    def summarise(acts: np.ndarray) -> Dict[str, float]:
        rms = float(np.sqrt(np.mean(acts**2)))
        kurtosis = float(np.mean(acts**4) / np.mean(acts**2) ** 2)
        outlier_channels = np.argmax(np.abs(acts), axis=1)
        return {
            "absmax": float(np.max(np.abs(acts))),
            "rms": rms,
            "peak_to_rms": float(np.max(np.abs(acts)) / rms),
            "kurtosis": kurtosis,
            "distinct_outlier_channels": int(len(np.unique(outlier_channels))),
        }

    limit = float(np.max(np.abs(before)))
    edges = np.linspace(-limit, limit, num_bins + 1)
    return {
        "layer": layer,
        "bin_edges": edges,
        "histogram_before": np.histogram(before, bins=edges)[0],
        "histogram_after": np.histogram(after, bins=edges)[0],
        "before": summarise(before),
        "after": summarise(after),
    }


def fig3_ssm_requant_cost(bits: int = 8) -> List[Dict[str, object]]:
    """Fig. 3: per-operator SSM hardware cost, naive vs PoT re-quantization."""
    pot = ssm_operator_costs(bits=bits, pot_requant=True)
    non_pot = ssm_operator_costs(bits=bits, pot_requant=False)
    rows = []
    for op in pot:
        rows.append(
            {
                "operator": op,
                "dsp_non_pot": non_pot[op].dsp,
                "dsp_pot": pot[op].dsp,
                "lut_non_pot": int(non_pot[op].lut),
                "lut_pot": int(pot[op].lut),
            }
        )
    return rows


def fig4b_fusion_error(
    setup: Optional[ReferenceSetup] = None,
    bits: int = 4,
    group_size: int = 128,
    rotation_seed: int = 0,
    norm_scale_sigma: float = 1.0,
) -> List[Dict[str, object]]:
    """Fig. 4b: per-layer out-proj weight quantization error.

    Compares "only rotate" (the paper's choice: the gated-RMSNorm scale stays
    separate) against "fuse and rotate" (the scale folded into the weight
    before rotation), which inflates the weight's dynamic range and its
    absolute quantization error.

    Real Mamba2 checkpoints have heavy-tailed gated-RMSNorm scales -- that is
    what makes the fusion harmful.  The synthetic reference model initialises
    those scales near 1, so this generator re-scales them with a deterministic
    log-normal draw of width ``norm_scale_sigma`` before rotating (set it to 0
    to study the unmodified model).
    """
    setup = setup or build_reference_setup()
    source = setup.model
    if norm_scale_sigma > 0:
        source = source.copy()
        rng = np.random.default_rng(rotation_seed + 1234)
        for block in source.blocks:
            block.gated_norm.weight = block.gated_norm.weight * rng.lognormal(
                0.0, norm_scale_sigma, size=block.gated_norm.weight.shape
            )
    only = rotate_model(source, RotationConfig(seed=rotation_seed, fuse_gated_norm=False)).model
    fused = rotate_model(source, RotationConfig(seed=rotation_seed, fuse_gated_norm=True)).model
    rows = []
    for layer, (block_only, block_fused) in enumerate(zip(only.blocks, fused.blocks)):
        w_only = block_only.out_proj_weight
        w_fused = block_fused.out_proj_weight
        rows.append(
            {
                "layer": layer,
                "only_rotate": quantization_error(
                    w_only, rtn_quantize_weight(w_only, bits, group_size)
                ),
                "fuse_and_rotate": quantization_error(
                    w_fused, rtn_quantize_weight(w_fused, bits, group_size)
                ),
            }
        )
    return rows


def fig6_pipeline_schedules(
    model_preset: str = "mamba2-2.7b",
    config: Optional[AcceleratorConfig] = None,
) -> List[Dict[str, object]]:
    """Fig. 6: block latency and utilisation under the three schedules."""
    base = config or AcceleratorConfig(platform=VCK190)
    model_config = get_preset(model_preset)
    naive_cycles = None
    rows = []
    for mode in (ScheduleMode.SEQUENTIAL, ScheduleMode.REORDERED, ScheduleMode.FINE_GRAINED):
        accelerator = LightMambaAccelerator(base.with_overrides(schedule=mode), model_config)
        schedule = accelerator.block_schedule()
        if naive_cycles is None:
            naive_cycles = schedule.total_cycles
        rows.append(
            {
                "schedule": mode.value,
                "block_cycles": int(schedule.total_cycles),
                "latency_reduction_vs_naive_%": round(
                    100.0 * (1.0 - schedule.total_cycles / naive_cycles), 1
                ),
                "tokens_per_s": round(accelerator.tokens_per_second(), 2),
                "bottleneck_utilisation_%": round(100.0 * schedule.bottleneck_utilisation, 1),
                "mmu_utilisation_%": round(100.0 * schedule.utilisation("mmu"), 1),
                "ssmu_utilisation_%": round(100.0 * schedule.utilisation("ssmu"), 1),
            }
        )
    return rows


def fig7_tiling_uram(
    model_preset: str = "mamba2-2.7b",
    config: Optional[AcceleratorConfig] = None,
) -> Dict[str, object]:
    """Fig. 7: SSMU URAM with tensor-by-tensor vs tile-by-tile buffers."""
    base = config or AcceleratorConfig(platform=VCK190)
    model_config = get_preset(model_preset)
    coarse = LightMambaAccelerator(
        base.with_overrides(schedule=ScheduleMode.REORDERED), model_config
    )
    fine = LightMambaAccelerator(
        base.with_overrides(schedule=ScheduleMode.FINE_GRAINED), model_config
    )
    before = coarse.uram_usage()
    after = fine.uram_usage()
    return {
        "tensor_by_tensor_uram": before,
        "tile_by_tile_uram": after,
        "reduction_factor": round(before / max(after, 1), 2),
        "paper_before": 246,
        "paper_after": 61,
    }


def fig9a_throughput_vs_seqlen(
    seq_lens: Sequence[int] = (128, 1024, 4096, 8192),
    model_preset: str = "mamba2-2.7b",
) -> Dict[str, Dict[int, float]]:
    """Fig. 9a: decode throughput vs output sequence length.

    Series: LightMamba on U280 (flat -- fixed-size recurrent state), the RTX
    2070 running the same Mamba2 model (flat), and the prior Transformer
    accelerators FlightLLM / DFX on their own models (declining with length
    because of the KV cache).
    """
    model_config = get_preset(model_preset)
    ours = LightMambaAccelerator(AcceleratorConfig(platform=U280), model_config)
    gpu = GPUDecodeModel(RTX2070)
    series: Dict[str, Dict[int, float]] = {
        "LightMamba U280 (Mamba2-2.7B)": {},
        "RTX 2070 (Mamba2-2.7B)": {},
        "FlightLLM (LLaMA2-7B)": {},
        "DFX (GPT2-1.5B)": {},
    }
    for length in seq_lens:
        series["LightMamba U280 (Mamba2-2.7B)"][length] = round(
            ours.generation_throughput(output_tokens=length), 2
        )
        series["RTX 2070 (Mamba2-2.7B)"][length] = round(
            gpu.decode_tokens_per_second(model_config.num_parameters()), 2
        )
        series["FlightLLM (LLaMA2-7B)"][length] = round(FLIGHTLLM.tokens_per_second(length), 2)
        series["DFX (GPT2-1.5B)"][length] = round(DFX.tokens_per_second(length), 2)
    return series


def fig9b_energy_efficiency(
    model_presets: Sequence[str] = (
        "mamba2-130m",
        "mamba2-370m",
        "mamba2-780m",
        "mamba2-1.3b",
        "mamba2-2.7b",
    ),
) -> Dict[str, Dict[str, float]]:
    """Fig. 9b: energy efficiency (tokens/J) vs model size.

    Series: LightMamba on VCK190 (W4A4) and the two GPU baselines, plus the
    improvement ratios the paper headlines (6.06x over the RTX 2070, 4.65x
    over the RTX 4090 on average).
    """
    series: Dict[str, Dict[str, float]] = {
        "LightMamba VCK190": {},
        "RTX 2070": {},
        "RTX 4090": {},
        "ratio vs RTX 2070": {},
        "ratio vs RTX 4090": {},
    }
    for preset in model_presets:
        model_config = get_preset(preset)
        ours = LightMambaAccelerator(
            AcceleratorConfig(platform=VCK190), model_config
        ).energy_efficiency()
        gpu2070 = GPUDecodeModel(RTX2070).mamba_result(model_config).energy_efficiency
        gpu4090 = GPUDecodeModel(RTX4090).mamba_result(model_config).energy_efficiency
        series["LightMamba VCK190"][preset] = round(ours, 3)
        series["RTX 2070"][preset] = round(gpu2070, 3)
        series["RTX 4090"][preset] = round(gpu4090, 3)
        series["ratio vs RTX 2070"][preset] = round(ours / gpu2070, 2)
        series["ratio vs RTX 4090"][preset] = round(ours / gpu4090, 2)
    return series


def fig10_ablation(
    include_accuracy: bool = False,
    setup: Optional[ReferenceSetup] = None,
    model_preset: str = "mamba2-2.7b",
) -> List[Dict[str, object]]:
    """Fig. 10: throughput / accuracy / URAM as the techniques are added.

    The hardware columns come from the analytic accelerator model on the
    full-size target; the (optional, slower) accuracy column quantizes the
    reference evaluation model with each step's quantization configuration
    and runs the synthetic task suite.
    """
    accuracies: Dict[str, float] = {}
    if include_accuracy:
        setup = setup or build_reference_setup()
        cache: Dict[str, float] = {}
        for step in ABLATION_STEPS:
            if step.quant is None:
                key = "fp16"
                if key not in cache:
                    cache[key] = evaluate_model(setup.model, setup.tasks).average_accuracy
            else:
                key = step.quant.label
                if key not in cache:
                    quantized = quantize_model(
                        setup.model, step.quant, calibration=setup.calibration
                    )
                    cache[key] = evaluate_model(quantized, setup.tasks).average_accuracy
            accuracies[step.name] = cache[key]

    results: List[AblationResult] = run_hardware_ablation(
        model_config=get_preset(model_preset), accuracies=accuracies
    )
    return [result.as_dict() for result in results]
