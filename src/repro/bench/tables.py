"""Generators for the paper's tables (I-IV)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eval.harness import evaluate_model, last_token_perplexity
from repro.eval.metrics import mean_kl_divergence
from repro.eval.reference import ReferenceSetup, build_reference_setup
from repro.hardware.accelerator import AcceleratorConfig, LightMambaAccelerator
from repro.hardware.baselines import ARCHITECTURE_COMPARISON
from repro.hardware.gpu import GPUDecodeModel
from repro.hardware.platforms import RTX2070, RTX4090, U280, VCK190
from repro.mamba.config import get_preset
from repro.quant.error import quantization_error
from repro.quant.hadamard import hadamard_matrix
from repro.quant.outlier_suppression import compute_shift_and_scale
from repro.quant.qmodel import QuantConfig, QuantMethod, quantize_model
from repro.quant.rtn import rtn_quantize_activation
from repro.quant.smoothquant import compute_smoothing_scales

__all__ = [
    "table1_architecture_comparison",
    "table2_quant_error",
    "table3_accuracy",
    "table4_hardware",
]

#: Published Table II values (4-bit quantization error of the out-proj
#: activation on Mamba2-2.7B) for side-by-side reporting.
PAPER_TABLE2 = {"RTN": 19.5, "SQ": 18.8, "OS+": 309.8, "LightMamba": 13.1}

#: Published Table IV decode throughput (tokens/s).
PAPER_TABLE4_THROUGHPUT = {
    "VCK190 W4A4": 7.21,
    "VCK190 W8A8": 3.61,
    "U280 W4A4": 93.0,
    "RTX 2070": 65.0,
    "RTX 4090": 138.0,
}


def table1_architecture_comparison() -> List[Dict[str, str]]:
    """Table I: qualitative comparison of accelerator paradigms."""
    return [dict(row) for row in ARCHITECTURE_COMPARISON]


def _held_out_out_proj_activations(setup: ReferenceSetup, layer: int) -> np.ndarray:
    """Out-proj input activations of one layer on the held-out sequences."""
    chunks = []
    for seq in setup.evaluation_sequences:
        collect: list = []
        setup.model.forward(seq, collect=collect)
        chunks.append(collect[layer]["out_proj_input"])
    return np.concatenate(chunks, axis=0)


def table2_quant_error(
    setup: Optional[ReferenceSetup] = None,
    bits: int = 4,
    group_size: int = 128,
    layer: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Table II: 4-bit out-proj activation quantization error per method.

    The error metric is the mean per-token L2 error between the original
    activation and its quantize-dequantize round trip, measured on held-out
    sequences (calibration statistics for SmoothQuant / OS+ come from the
    separate calibration set, which is what exposes their sensitivity to
    scattered outliers).
    """
    setup = setup or build_reference_setup()
    layer = setup.config.n_layer // 2 if layer is None else layer
    activations = _held_out_out_proj_activations(setup, layer)
    weight = setup.model.blocks[layer].out_proj_weight

    rows: List[Dict[str, object]] = []

    def add(method: str, reconstructed: np.ndarray) -> None:
        rows.append(
            {
                "method": method,
                "quant_error": quantization_error(activations, reconstructed),
                "paper_error": PAPER_TABLE2[method],
            }
        )

    # RTN: quantize the raw activation directly.
    add("RTN", rtn_quantize_activation(activations, bits, group_size))

    # SmoothQuant: scale channels using calibration absmax, quantize, rescale.
    scales = compute_smoothing_scales(setup.calibration.out_proj_absmax(layer), weight)
    add("SQ", rtn_quantize_activation(activations / scales, bits, group_size) * scales)

    # OS+: shift and scale using calibration min/max, quantize, undo.
    lo, hi = setup.calibration.out_proj_minmax(layer)
    shift, os_scale = compute_shift_and_scale(lo, hi, weight)
    reconstructed = (
        rtn_quantize_activation((activations - shift) / os_scale, bits, group_size) * os_scale
        + shift
    )
    add("OS+", reconstructed)

    # LightMamba: online Hadamard rotation, quantize, rotate back.
    h = hadamard_matrix(activations.shape[1], normalized=True)
    add("LightMamba", rtn_quantize_activation(activations @ h, bits, group_size) @ h.T)
    return rows


#: The method / precision grid of Table III.
TABLE3_CONFIGS: List[tuple] = [
    ("FP16", None, None),
    ("RTN", QuantMethod.RTN, "w8a8"),
    ("SQ", QuantMethod.SMOOTHQUANT, "w8a8"),
    ("OS+", QuantMethod.OSPLUS, "w8a8"),
    ("LightMamba", QuantMethod.LIGHTMAMBA, "w8a8"),
    ("LightMamba*", QuantMethod.LIGHTMAMBA_STAR, "w8a8"),
    ("RTN", QuantMethod.RTN, "w4a4"),
    ("SQ", QuantMethod.SMOOTHQUANT, "w4a4"),
    ("OS+", QuantMethod.OSPLUS, "w4a4"),
    ("LightMamba", QuantMethod.LIGHTMAMBA, "w4a4"),
    ("LightMamba*", QuantMethod.LIGHTMAMBA_STAR, "w4a4"),
]


def table3_accuracy(
    setup: Optional[ReferenceSetup] = None,
    configs: Optional[Sequence[tuple]] = None,
    ppl_task: str = "lambada-syn",
) -> List[Dict[str, object]]:
    """Table III: perplexity and zero-shot accuracy per method and precision.

    Each row quantizes the reference model with one method / precision, then
    reports

    - the LAMBADA-style gold-continuation perplexity,
    - the mean KL divergence to the FP16 reference on held-out sequences
      (the synthetic analogue of "how much worse than FP16 did this get",
      which is what the paper's perplexity deltas convey), and
    - the accuracy on every synthetic task plus their average.
    """
    setup = setup or build_reference_setup()
    configs = configs if configs is not None else TABLE3_CONFIGS
    ppl_task_obj = next(task for task in setup.tasks if task.name == ppl_task)

    rows: List[Dict[str, object]] = []
    for label, method, precision in configs:
        if method is None:
            quantized = setup.model
            precision_label = "FP16"
        else:
            factory = QuantConfig.w8a8 if precision == "w8a8" else QuantConfig.w4a4
            quantized = quantize_model(
                setup.model, factory(method), calibration=setup.calibration
            )
            precision_label = precision.upper()
        report = evaluate_model(quantized, setup.tasks, label=label)
        row: Dict[str, object] = {
            "method": label,
            "precision": precision_label,
            "ppl": round(last_token_perplexity(quantized, ppl_task_obj), 3),
            "kl_vs_fp16": round(
                mean_kl_divergence(setup.model, quantized, setup.evaluation_sequences), 4
            ),
        }
        row.update(report.as_row())
        rows.append(row)
    return rows


def table4_hardware(model_preset: str = "mamba2-2.7b") -> List[Dict[str, object]]:
    """Table IV: platforms, resources, throughput and energy efficiency."""
    model_config = get_preset(model_preset)
    rows: List[Dict[str, object]] = []

    fpga_points = [
        ("VCK190 W4A4", AcceleratorConfig(platform=VCK190, weight_bits=4, act_bits=4)),
        ("VCK190 W8A8", AcceleratorConfig(platform=VCK190, weight_bits=8, act_bits=8)),
        ("U280 W4A4", AcceleratorConfig(platform=U280, weight_bits=4, act_bits=4)),
    ]
    for label, config in fpga_points:
        accelerator = LightMambaAccelerator(config, model_config)
        report = accelerator.report()
        total = report.resources.total
        rows.append(
            {
                "platform": label,
                "frequency_mhz": config.platform.frequency_hz / 1e6,
                "bandwidth_gb_s": config.platform.dram_bandwidth_bytes_per_s / 1e9,
                "precision": f"W{config.weight_bits}A{config.act_bits}",
                "lut": int(total.lut),
                "ff": int(total.ff),
                "dsp": int(total.dsp),
                "bram": int(total.bram),
                "uram": report.uram_total,
                "tokens_per_s": round(report.tokens_per_second, 2),
                "tokens_per_j": round(report.energy_efficiency_tokens_per_j, 3),
                "paper_tokens_per_s": PAPER_TABLE4_THROUGHPUT.get(label),
            }
        )

    for platform in (RTX2070, RTX4090):
        result = GPUDecodeModel(platform).mamba_result(model_config)
        rows.append(
            {
                "platform": platform.name,
                "frequency_mhz": platform.frequency_hz / 1e6,
                "bandwidth_gb_s": platform.dram_bandwidth_bytes_per_s / 1e9,
                "precision": "FP16",
                "tokens_per_s": round(result.tokens_per_second, 2),
                "tokens_per_j": round(result.energy_efficiency, 3),
                "paper_tokens_per_s": PAPER_TABLE4_THROUGHPUT.get(platform.name),
            }
        )
    return rows
