"""Synthetic token corpora.

Three generators are provided:

- :class:`ZipfCorpusGenerator` -- i.i.d. tokens with a Zipfian marginal, the
  simplest stand-in for natural-language token statistics; used for
  calibration (the paper calibrates on 128 random WikiText2 sequences).
- :class:`MarkovCorpusGenerator` -- a first-order Markov chain with a random
  sparse transition structure, providing sequential correlations.
- :class:`ModelSampledCorpus` -- sequences sampled autoregressively from a
  reference model; evaluating a quantized variant on such data measures how
  much quantization perturbs the reference distribution, which is the
  quantity behind the perplexity / accuracy deltas of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.mamba.model import Mamba2Model
from repro.mamba.ops import softmax

__all__ = [
    "ZipfCorpusGenerator",
    "MarkovCorpusGenerator",
    "ModelSampledCorpus",
    "split_into_sequences",
]


def split_into_sequences(tokens: np.ndarray, seq_len: int) -> List[np.ndarray]:
    """Split a long token stream into full-length sequences (drop remainder)."""
    tokens = np.asarray(tokens, dtype=np.int64)
    if seq_len <= 0:
        raise ValueError("seq_len must be positive")
    n_full = len(tokens) // seq_len
    return [tokens[i * seq_len : (i + 1) * seq_len] for i in range(n_full)]


@dataclass(frozen=True)
class ZipfCorpusGenerator:
    """I.i.d. Zipf-distributed token stream.

    Attributes
    ----------
    vocab_size:
        Vocabulary size (tokens are ``0 .. vocab_size-1``).
    exponent:
        Zipf exponent; ~1.1 resembles natural-language unigram statistics.
    """

    vocab_size: int
    exponent: float = 1.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocab_size < 2:
            raise ValueError("vocab_size must be at least 2")
        if self.exponent <= 0:
            raise ValueError("exponent must be positive")

    def _probabilities(self) -> np.ndarray:
        ranks = np.arange(1, self.vocab_size + 1, dtype=np.float64)
        weights = ranks ** (-self.exponent)
        return weights / weights.sum()

    def generate(self, num_tokens: int, seed: int | None = None) -> np.ndarray:
        """Generate a token stream of the requested length."""
        if num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        probs = self._probabilities()
        # Shuffle the rank-to-token assignment so token id 0 is not always the
        # most frequent token.
        permutation = rng.permutation(self.vocab_size)
        draws = rng.choice(self.vocab_size, size=num_tokens, p=probs)
        return permutation[draws]

    def sequences(
        self, num_sequences: int, seq_len: int, seed: int | None = None
    ) -> List[np.ndarray]:
        """Generate ``num_sequences`` independent sequences."""
        stream = self.generate(num_sequences * seq_len, seed=seed)
        return split_into_sequences(stream, seq_len)


@dataclass(frozen=True)
class MarkovCorpusGenerator:
    """First-order Markov chain over the vocabulary.

    Each token has ``branching`` likely successors (with Zipfian weights
    among them) plus a small uniform smoothing mass, giving sequences with
    realistic local predictability.
    """

    vocab_size: int
    branching: int = 8
    smoothing: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocab_size < 2:
            raise ValueError("vocab_size must be at least 2")
        if not 1 <= self.branching <= self.vocab_size:
            raise ValueError("branching must be in [1, vocab_size]")
        if not 0.0 <= self.smoothing < 1.0:
            raise ValueError("smoothing must be in [0, 1)")

    def transition_matrix(self) -> np.ndarray:
        """The (dense) row-stochastic transition matrix of the chain."""
        rng = np.random.default_rng(self.seed)
        matrix = np.full((self.vocab_size, self.vocab_size), self.smoothing / self.vocab_size)
        ranks = np.arange(1, self.branching + 1, dtype=np.float64)
        weights = ranks**-1.0
        weights = (1.0 - self.smoothing) * weights / weights.sum()
        for token in range(self.vocab_size):
            successors = rng.choice(self.vocab_size, size=self.branching, replace=False)
            matrix[token, successors] += weights
        return matrix / matrix.sum(axis=1, keepdims=True)

    def generate(self, num_tokens: int, seed: int | None = None) -> np.ndarray:
        if num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        rng = np.random.default_rng((self.seed + 1) if seed is None else seed)
        matrix = self.transition_matrix()
        tokens = np.empty(num_tokens, dtype=np.int64)
        tokens[0] = rng.integers(0, self.vocab_size)
        for i in range(1, num_tokens):
            tokens[i] = rng.choice(self.vocab_size, p=matrix[tokens[i - 1]])
        return tokens

    def sequences(
        self, num_sequences: int, seq_len: int, seed: int | None = None
    ) -> List[np.ndarray]:
        base = self.seed if seed is None else seed
        return [
            self.generate(seq_len, seed=base + 7919 * (i + 1)) for i in range(num_sequences)
        ]


@dataclass
class ModelSampledCorpus:
    """Sequences sampled autoregressively from a reference model."""

    model: Mamba2Model
    temperature: float = 0.9
    top_k: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.top_k <= 0:
            raise ValueError("top_k must be positive")

    def generate_sequence(self, seq_len: int, seed: int | None = None) -> np.ndarray:
        """Sample one sequence of ``seq_len`` tokens (including the seed token)."""
        if seq_len < 2:
            raise ValueError("seq_len must be at least 2")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        vocab = self.model.config.vocab_size
        first = int(rng.integers(0, vocab))
        tokens = [first]
        logits, cache = self.model.prefill(np.array([first]))
        for _ in range(seq_len - 1):
            scaled = logits / self.temperature
            if self.top_k < vocab:
                kth = np.partition(scaled, -self.top_k)[-self.top_k]
                scaled = np.where(scaled < kth, -np.inf, scaled)
            probs = softmax(scaled)
            token = int(rng.choice(vocab, p=probs))
            tokens.append(token)
            logits = self.model.step(token, cache)
        return np.asarray(tokens, dtype=np.int64)

    def sequences(self, num_sequences: int, seq_len: int) -> List[np.ndarray]:
        return [
            self.generate_sequence(seq_len, seed=self.seed + 104729 * (i + 1))
            for i in range(num_sequences)
        ]
