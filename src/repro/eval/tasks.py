"""Synthetic zero-shot task suite.

The paper evaluates on six zero-shot tasks (LAMBADA, HellaSwag, PIQA, ARC
Easy/Challenge, Winogrande, OpenbookQA) through lm-eval-harness; all of them
reduce to *ranking a small set of candidate continuations* of a context by
model log-likelihood.  The synthetic stand-ins here keep exactly that
structure without needing pretrained checkpoints or the datasets:

- the *context* comes from an external (Zipf) token source, so it does not
  collapse into the model's own high-confidence attractor;
- the *gold continuation* is sampled from the floating-point reference model
  at a **low** temperature (a likely continuation under the reference
  distribution);
- the *distractor continuations* are sampled from the same reference
  distribution at a **high** temperature (plausible but less likely).

The reference model therefore ranks the gold highest most -- but not all --
of the time (accuracy well above chance, below 100%), exactly like a real LLM
on a real benchmark.  A quantized model perturbs the distribution the
candidates were generated from, so its ranking decorrelates from the
generation process and its accuracy drops toward chance in proportion to the
quantization damage -- the same quantity the accuracy columns of Table III
measure.  Each paper task maps to a :class:`TaskSpec` that varies the number
of candidates, the continuation length and the gold/distractor temperature
gap (binary-choice Winogrande / PIQA, 4-way ARC and HellaSwag with multi-token
continuations, many-way LAMBADA-style next-token prediction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.eval.data import ZipfCorpusGenerator
from repro.mamba.model import Mamba2Model
from repro.mamba.ops import softmax

__all__ = ["TaskExample", "SyntheticTask", "TaskSpec", "DEFAULT_TASK_SPECS", "build_task_suite"]


@dataclass
class TaskExample:
    """One ranking example: a context and candidate continuations."""

    context: np.ndarray
    candidates: List[np.ndarray]
    gold_index: int

    def __post_init__(self) -> None:
        self.context = np.asarray(self.context, dtype=np.int64)
        self.candidates = [np.asarray(c, dtype=np.int64) for c in self.candidates]
        if not 0 <= self.gold_index < len(self.candidates):
            raise ValueError("gold_index out of range")
        if len(self.candidates) < 2:
            raise ValueError("an example needs at least two candidates")


@dataclass
class SyntheticTask:
    """A named set of ranking examples."""

    name: str
    examples: List[TaskExample]

    def __len__(self) -> int:
        return len(self.examples)

    @property
    def chance_accuracy(self) -> float:
        """Expected accuracy of random guessing."""
        if not self.examples:
            return 0.0
        return float(np.mean([1.0 / len(ex.candidates) for ex in self.examples]))


@dataclass(frozen=True)
class TaskSpec:
    """Generation recipe of one synthetic task.

    Attributes
    ----------
    name:
        Task name (mirrors the paper's benchmark it stands in for).
    num_candidates:
        Candidates per example (gold + distractors).
    continuation_len:
        Tokens per candidate continuation.
    context_len:
        Length of the externally-generated context.
    gold_temperature / distractor_temperature:
        Sampling temperatures of the gold and distractor continuations; a
        smaller gap makes the task harder (reference accuracy closer to
        chance) and more sensitive to quantization damage.
    """

    name: str
    num_candidates: int = 4
    continuation_len: int = 2
    context_len: int = 16
    gold_temperature: float = 0.7
    distractor_temperature: float = 1.4

    def __post_init__(self) -> None:
        if self.num_candidates < 2:
            raise ValueError("num_candidates must be at least 2")
        if self.continuation_len < 1 or self.context_len < 2:
            raise ValueError("continuation_len >= 1 and context_len >= 2 required")
        if self.gold_temperature <= 0 or self.distractor_temperature <= 0:
            raise ValueError("temperatures must be positive")
        if self.gold_temperature >= self.distractor_temperature:
            raise ValueError("gold_temperature must be below distractor_temperature")


#: The six zero-shot benchmarks of Table III mapped onto synthetic specs.
DEFAULT_TASK_SPECS: List[TaskSpec] = [
    TaskSpec(name="lambada-syn", num_candidates=8, continuation_len=1, context_len=24,
             gold_temperature=0.6, distractor_temperature=1.6),
    TaskSpec(name="hellaswag-syn", num_candidates=4, continuation_len=4, context_len=16,
             gold_temperature=0.8, distractor_temperature=1.3),
    TaskSpec(name="piqa-syn", num_candidates=2, continuation_len=3, context_len=12,
             gold_temperature=0.7, distractor_temperature=1.4),
    TaskSpec(name="arc-easy-syn", num_candidates=4, continuation_len=2, context_len=16,
             gold_temperature=0.6, distractor_temperature=1.6),
    TaskSpec(name="arc-challenge-syn", num_candidates=4, continuation_len=2, context_len=16,
             gold_temperature=0.9, distractor_temperature=1.2),
    TaskSpec(name="winogrande-syn", num_candidates=2, continuation_len=2, context_len=14,
             gold_temperature=0.8, distractor_temperature=1.25),
    TaskSpec(name="openbookqa-syn", num_candidates=4, continuation_len=3, context_len=18,
             gold_temperature=0.85, distractor_temperature=1.25),
]


def _sample_token(
    rng: np.random.Generator,
    logits: np.ndarray,
    temperature: float,
    exclude: tuple = (),
    top_k: int = 64,
) -> int:
    scaled = np.array(logits, dtype=np.float64) / temperature
    for token in exclude:
        scaled[token] = -np.inf
    if top_k < scaled.shape[-1]:
        kth = np.partition(scaled, -top_k)[-top_k]
        scaled = np.where(scaled < kth, -np.inf, scaled)
    probs = softmax(scaled)
    return int(rng.choice(len(probs), p=probs))


def _build_example(
    model: Mamba2Model,
    spec: TaskSpec,
    context: np.ndarray,
    rng: np.random.Generator,
) -> TaskExample:
    logits, cache = model.prefill(context)

    # Candidate start tokens: the gold at the low temperature, distractors at
    # the high temperature, all distinct.
    starts = [_sample_token(rng, logits, spec.gold_temperature)]
    for _ in range(spec.num_candidates - 1):
        starts.append(
            _sample_token(rng, logits, spec.distractor_temperature, exclude=tuple(starts))
        )

    candidates = []
    for position, start in enumerate(starts):
        temperature = spec.gold_temperature if position == 0 else spec.distractor_temperature
        branch = cache.copy()
        tokens = [start]
        current = model.step(start, branch)
        for _ in range(spec.continuation_len - 1):
            token = _sample_token(rng, current, temperature)
            tokens.append(token)
            current = model.step(token, branch)
        candidates.append(np.asarray(tokens, dtype=np.int64))

    order = rng.permutation(len(candidates))
    gold_index = int(np.where(order == 0)[0][0])
    return TaskExample(
        context=context,
        candidates=[candidates[i] for i in order],
        gold_index=gold_index,
    )


def build_task_suite(
    reference_model: Mamba2Model,
    num_examples: int = 24,
    specs: Optional[List[TaskSpec]] = None,
    seed: int = 0,
    context_generator: Optional[ZipfCorpusGenerator] = None,
) -> List[SyntheticTask]:
    """Build the synthetic zero-shot suite from a floating-point reference.

    Parameters
    ----------
    reference_model:
        The FP model that defines the candidate distribution (the same model
        whose quantized variants will be evaluated).
    num_examples:
        Examples per task.
    specs:
        Task recipes; defaults to :data:`DEFAULT_TASK_SPECS`.
    seed:
        Seed controlling every sampled context / continuation.
    context_generator:
        Source of the contexts; defaults to a Zipf generator over the model's
        vocabulary.
    """
    if num_examples <= 0:
        raise ValueError("num_examples must be positive")
    specs = specs if specs is not None else DEFAULT_TASK_SPECS
    context_generator = context_generator or ZipfCorpusGenerator(
        reference_model.config.vocab_size, seed=seed
    )
    suite = []
    for spec_idx, spec in enumerate(specs):
        rng = np.random.default_rng(seed + 15_485_863 * (spec_idx + 1))
        examples = []
        for example_idx in range(num_examples):
            context = context_generator.generate(
                spec.context_len, seed=seed + 7919 * (spec_idx + 1) + example_idx
            )
            examples.append(_build_example(reference_model, spec, context, rng))
        suite.append(SyntheticTask(name=spec.name, examples=examples))
    return suite
