"""Perplexity evaluation."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mamba.model import Mamba2Model
from repro.mamba.ops import cross_entropy

__all__ = ["sequence_cross_entropy", "perplexity"]


def sequence_cross_entropy(model: Mamba2Model, tokens: np.ndarray) -> float:
    """Mean next-token cross entropy (nats) of one sequence."""
    tokens = np.asarray(tokens, dtype=np.int64)
    if tokens.ndim != 1 or tokens.shape[0] < 2:
        raise ValueError("a sequence of at least two tokens is required")
    logits = model.forward(tokens[:-1])
    return cross_entropy(logits, tokens[1:])


def perplexity(model: Mamba2Model, sequences: Sequence[np.ndarray]) -> float:
    """Token-weighted perplexity over a set of sequences.

    This is the metric of the LAMBADA-ppl column of Table III: lower is
    better, and the *difference* between a quantized model and its FP
    reference measures the quantization damage.
    """
    if not sequences:
        raise ValueError("at least one sequence is required")
    total_nats = 0.0
    total_tokens = 0
    for seq in sequences:
        seq = np.asarray(seq, dtype=np.int64)
        n_predictions = seq.shape[0] - 1
        if n_predictions < 1:
            raise ValueError("every sequence needs at least two tokens")
        total_nats += sequence_cross_entropy(model, seq) * n_predictions
        total_tokens += n_predictions
    return float(np.exp(total_nats / total_tokens))
