"""Evaluation harness: score models on the synthetic task suite.

Mirrors the lm-eval-harness protocol the paper uses: each candidate
continuation is scored by its length-normalised log-likelihood given the
context, and an example counts as correct when the gold candidate scores
highest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eval.perplexity import perplexity
from repro.eval.tasks import SyntheticTask, TaskExample
from repro.mamba.model import Mamba2Model
from repro.mamba.ops import softmax

__all__ = [
    "TaskResult",
    "EvaluationReport",
    "score_candidates",
    "evaluate_task",
    "evaluate_model",
    "last_token_perplexity",
]


@dataclass(frozen=True)
class TaskResult:
    """Accuracy of one model on one task."""

    name: str
    accuracy: float
    num_examples: int
    chance_accuracy: float


@dataclass
class EvaluationReport:
    """Aggregate evaluation of one model (one row of Table III)."""

    label: str
    perplexity: Optional[float]
    task_results: List[TaskResult] = field(default_factory=list)

    @property
    def average_accuracy(self) -> float:
        """Mean accuracy over the task suite (the paper's "Average" column)."""
        if not self.task_results:
            return 0.0
        return float(np.mean([r.accuracy for r in self.task_results]))

    def accuracy(self, task_name: str) -> float:
        for result in self.task_results:
            if result.name == task_name:
                return result.accuracy
        raise KeyError(f"no result for task '{task_name}'")

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary row: perplexity, per-task accuracy, average."""
        row: Dict[str, float] = {}
        if self.perplexity is not None:
            row["ppl"] = round(self.perplexity, 3)
        for result in self.task_results:
            row[result.name] = round(100.0 * result.accuracy, 1)
        row["average"] = round(100.0 * self.average_accuracy, 1)
        return row


def _candidate_loglikelihood(
    model: Mamba2Model, context: np.ndarray, candidate: np.ndarray
) -> float:
    """Length-normalised log-likelihood of ``candidate`` given ``context``.

    Reference implementation over the full-sequence forward; the harness uses
    the cache-based path of :func:`score_candidates`, which is equivalent (the
    tests check this) but avoids recomputing the context once per candidate.
    """
    full = np.concatenate([context, candidate])
    logits = model.forward(full[:-1])
    # Positions predicting the candidate tokens.
    start = len(context) - 1
    log_probs = np.log(softmax(logits[start:], axis=-1) + 1e-300)
    picked = log_probs[np.arange(len(candidate)), candidate]
    return float(np.sum(picked) / len(candidate))


def score_candidates(model: Mamba2Model, example: TaskExample) -> int:
    """Index of the candidate the model ranks highest.

    The context is prefetched once into a recurrent cache; each candidate is
    then scored by stepping through its tokens from a copy of that cache
    (Mamba's fixed-size state makes this cheap).
    """
    context_logits, cache = model.prefill(example.context)
    scores = []
    for candidate in example.candidates:
        branch = cache.copy()
        logits = context_logits
        total = 0.0
        for position, token in enumerate(candidate):
            log_probs = np.log(softmax(logits) + 1e-300)
            total += float(log_probs[token])
            if position + 1 < len(candidate):
                logits = model.step(int(token), branch)
        scores.append(total / len(candidate))
    return int(np.argmax(scores))


def last_token_perplexity(model: Mamba2Model, task: SyntheticTask) -> float:
    """Perplexity of the gold continuations of a task (LAMBADA-style).

    The paper's LAMBADA column reports the perplexity of the final word given
    its context; the synthetic analogue is the perplexity of the gold
    continuation tokens of the LAMBADA-like task.  Because the gold tokens
    are drawn from the FP reference distribution, the FP model scores lowest
    and quantized models score higher in proportion to how much quantization
    perturbed their distribution.
    """
    if not task.examples:
        raise ValueError(f"task '{task.name}' has no examples")
    total_nll = 0.0
    total_tokens = 0
    for example in task.examples:
        gold = example.candidates[example.gold_index]
        nll = -_candidate_loglikelihood(model, example.context, gold) * len(gold)
        total_nll += nll
        total_tokens += len(gold)
    return float(np.exp(total_nll / total_tokens))


def evaluate_task(model: Mamba2Model, task: SyntheticTask) -> TaskResult:
    """Accuracy of ``model`` on one task."""
    if not task.examples:
        raise ValueError(f"task '{task.name}' has no examples")
    correct = sum(
        1 for example in task.examples if score_candidates(model, example) == example.gold_index
    )
    return TaskResult(
        name=task.name,
        accuracy=correct / len(task.examples),
        num_examples=len(task.examples),
        chance_accuracy=task.chance_accuracy,
    )


def evaluate_model(
    model: Mamba2Model,
    tasks: Sequence[SyntheticTask],
    ppl_sequences: Optional[Sequence[np.ndarray]] = None,
    label: str = "",
) -> EvaluationReport:
    """Evaluate a model on the task suite (and optionally perplexity)."""
    ppl = perplexity(model, ppl_sequences) if ppl_sequences else None
    results = [evaluate_task(model, task) for task in tasks]
    return EvaluationReport(label=label, perplexity=ppl, task_results=results)
