"""Evaluation substrate: synthetic data, perplexity, zero-shot task harness.

The paper evaluates quantization quality with WikiText2 perplexity and six
zero-shot tasks through lm-eval-harness (Table III).  Neither pretrained
checkpoints nor the datasets are available in this offline environment, so
this package provides faithful *synthetic* substitutes (documented in
DESIGN.md):

- :mod:`repro.eval.data` -- seeded Zipf / Markov token-corpus generators used
  for calibration, plus sequences sampled from the floating-point reference
  model used for evaluation;
- :mod:`repro.eval.perplexity` -- next-token perplexity of a model on a set
  of sequences;
- :mod:`repro.eval.tasks` -- a suite of synthetic cloze-style ranking tasks
  (stand-ins for LAMBADA, HellaSwag, PIQA, ARC-E/C, Winogrande, OpenbookQA)
  whose gold continuations are sampled from the FP reference model, so task
  accuracy measures exactly what Table III's accuracy deltas measure: how
  much a quantization scheme perturbs the model's predictive distribution;
- :mod:`repro.eval.harness` -- the evaluation loop producing per-task
  accuracy and the aggregate report;
- :mod:`repro.eval.metrics` -- agreement / divergence metrics between a
  quantized model and its FP reference.
"""

from repro.eval.data import (
    ZipfCorpusGenerator,
    MarkovCorpusGenerator,
    ModelSampledCorpus,
    split_into_sequences,
)
from repro.eval.perplexity import perplexity, sequence_cross_entropy
from repro.eval.tasks import (
    TaskExample,
    SyntheticTask,
    TaskSpec,
    DEFAULT_TASK_SPECS,
    build_task_suite,
)
from repro.eval.harness import (
    TaskResult,
    EvaluationReport,
    evaluate_task,
    evaluate_model,
    score_candidates,
    last_token_perplexity,
)
from repro.eval.metrics import top1_agreement, mean_kl_divergence, logit_mse
from repro.eval.reference import (
    EVAL_INIT,
    EVAL_OUTLIER_PROFILE,
    ReferenceSetup,
    build_reference_model,
    build_reference_setup,
)

__all__ = [
    "EVAL_INIT",
    "EVAL_OUTLIER_PROFILE",
    "ReferenceSetup",
    "build_reference_model",
    "build_reference_setup",
    "ZipfCorpusGenerator",
    "MarkovCorpusGenerator",
    "ModelSampledCorpus",
    "split_into_sequences",
    "perplexity",
    "sequence_cross_entropy",
    "TaskExample",
    "SyntheticTask",
    "TaskSpec",
    "DEFAULT_TASK_SPECS",
    "build_task_suite",
    "TaskResult",
    "EvaluationReport",
    "evaluate_task",
    "evaluate_model",
    "score_candidates",
    "last_token_perplexity",
    "top1_agreement",
    "mean_kl_divergence",
    "logit_mse",
]
