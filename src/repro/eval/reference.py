"""The reference evaluation setup used by the algorithm benchmarks.

Table II, Table III, Fig. 2 and Fig. 4b all evaluate quantization quality on
a Mamba2 checkpoint.  In this offline reproduction the checkpoint is replaced
by a synthetic *evaluation model* whose statistics are tuned so that the
phenomena the paper relies on are present (see DESIGN.md):

- scattered activation outliers at the output-projection input,
- token-stable outliers in the residual stream,
- strong per-block contributions (``residual_scale = 1``) so quantization
  error compounds through depth, as it does in trained checkpoints,
- a next-token distribution with natural-language-like entropy.

:func:`build_reference_setup` bundles the model together with calibration
sequences (the stand-in for the 128 WikiText2 calibration samples), held-out
evaluation sequences and the synthetic task suite, so every benchmark and
example evaluates against the same deterministic setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.eval.data import ZipfCorpusGenerator
from repro.eval.tasks import SyntheticTask, build_task_suite
from repro.mamba.config import Mamba2Config, get_preset
from repro.mamba.init import InitConfig, OutlierProfile
from repro.mamba.model import Mamba2Model
from repro.quant.calibration import CalibrationResult, collect_activation_stats

__all__ = [
    "EVAL_OUTLIER_PROFILE",
    "EVAL_INIT",
    "ReferenceSetup",
    "build_reference_model",
    "build_reference_setup",
]


#: Outlier structure of the evaluation model: every gate channel can spike
#: (heavy-tailed, token-dependent), which is what makes the output-projection
#: outliers *scattered* (the Mamba phenomenon of Fig. 2) rather than confined
#: to a fixed channel subset that channel-wise scaling could handle; a few
#: token-stable outlier channels are also injected into the residual stream.
EVAL_OUTLIER_PROFILE = OutlierProfile(
    scattered_fraction=1.0,
    scattered_gain=4.0,
    heavy_tail_sigma=1.5,
    fixed_channel_fraction=0.03,
    fixed_channel_gain=10.0,
)

#: Initialisation of the evaluation model (see the module docstring).
EVAL_INIT = InitConfig(
    seed=7,
    final_norm_scale=0.08,
    residual_scale=1.0,
    outliers=EVAL_OUTLIER_PROFILE,
)


def build_reference_model(
    preset: str = "mamba2-small",
    n_layer: int = 16,
    init: Optional[InitConfig] = None,
) -> Mamba2Model:
    """Build the deterministic synthetic evaluation model."""
    config = get_preset(preset).with_overrides(n_layer=n_layer)
    return Mamba2Model.from_config(config, init or EVAL_INIT)


@dataclass
class ReferenceSetup:
    """Model + data bundle shared by the algorithm benchmarks."""

    model: Mamba2Model
    calibration_sequences: List[np.ndarray]
    evaluation_sequences: List[np.ndarray]
    tasks: List[SyntheticTask]
    calibration: CalibrationResult = field(repr=False, default=None)

    @property
    def config(self) -> Mamba2Config:
        return self.model.config


def build_reference_setup(
    preset: str = "mamba2-small",
    n_layer: int = 16,
    num_calibration_sequences: int = 8,
    calibration_seq_len: int = 32,
    num_eval_sequences: int = 4,
    eval_seq_len: int = 32,
    num_task_examples: int = 16,
    seed: int = 0,
    store_calibration_samples: bool = True,
) -> ReferenceSetup:
    """Construct the full reference setup (model, data, calibration, tasks).

    The defaults keep the whole Table II / Table III pipeline runnable on a
    laptop CPU in minutes; the paper-scale equivalents (128 calibration
    sequences, thousands of task examples) are a matter of raising the
    counts.
    """
    model = build_reference_model(preset=preset, n_layer=n_layer)
    vocab = model.config.vocab_size
    calib_gen = ZipfCorpusGenerator(vocab, seed=seed + 1)
    eval_gen = ZipfCorpusGenerator(vocab, seed=seed + 2)
    calibration_sequences = calib_gen.sequences(num_calibration_sequences, calibration_seq_len)
    evaluation_sequences = eval_gen.sequences(num_eval_sequences, eval_seq_len)
    calibration = collect_activation_stats(
        model, calibration_sequences, store_samples=store_calibration_samples
    )
    tasks = build_task_suite(model, num_examples=num_task_examples, seed=seed + 3)
    return ReferenceSetup(
        model=model,
        calibration_sequences=calibration_sequences,
        evaluation_sequences=evaluation_sequences,
        tasks=tasks,
        calibration=calibration,
    )
