"""Fidelity metrics between a quantized model and its FP reference."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mamba.model import Mamba2Model
from repro.mamba.ops import softmax

__all__ = ["top1_agreement", "mean_kl_divergence", "logit_mse"]


def _stacked_logits(model: Mamba2Model, sequences: Sequence[np.ndarray]) -> np.ndarray:
    outputs = []
    for seq in sequences:
        outputs.append(model.forward(np.asarray(seq, dtype=np.int64)))
    return np.concatenate(outputs, axis=0)


def top1_agreement(
    reference: Mamba2Model, candidate: Mamba2Model, sequences: Sequence[np.ndarray]
) -> float:
    """Fraction of positions where both models pick the same next token."""
    if not sequences:
        raise ValueError("at least one sequence is required")
    ref = _stacked_logits(reference, sequences)
    cand = _stacked_logits(candidate, sequences)
    return float(np.mean(np.argmax(ref, axis=1) == np.argmax(cand, axis=1)))


def mean_kl_divergence(
    reference: Mamba2Model, candidate: Mamba2Model, sequences: Sequence[np.ndarray]
) -> float:
    """Mean KL(reference || candidate) of the next-token distributions (nats)."""
    if not sequences:
        raise ValueError("at least one sequence is required")
    ref = softmax(_stacked_logits(reference, sequences), axis=-1)
    cand = softmax(_stacked_logits(candidate, sequences), axis=-1)
    kl = np.sum(ref * (np.log(ref + 1e-12) - np.log(cand + 1e-12)), axis=1)
    return float(np.mean(kl))


def logit_mse(
    reference: Mamba2Model, candidate: Mamba2Model, sequences: Sequence[np.ndarray]
) -> float:
    """Mean squared difference of the raw logits."""
    if not sequences:
        raise ValueError("at least one sequence is required")
    ref = _stacked_logits(reference, sequences)
    cand = _stacked_logits(candidate, sequences)
    return float(np.mean((ref - cand) ** 2))
