#!/usr/bin/env python3
"""Quickstart: quantize a Mamba2 model with LightMamba and size the accelerator.

This example walks the public API end to end:

1. build a small synthetic Mamba2 model and generate a little text with it;
2. quantize it to W4A4 with the rotation-assisted + PoT scheme (LightMamba*)
   and check how closely the quantized model tracks the FP reference;
3. instantiate the paper's VCK190 accelerator design for the full-size
   Mamba2-2.7B target and print its throughput / energy / resource report.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations


from repro.core import CoDesignConfig, LightMambaPipeline
from repro.eval import ZipfCorpusGenerator, mean_kl_divergence, top1_agreement
from repro.mamba import ByteTokenizer, InitConfig, Mamba2Model, get_preset, greedy_decode
from repro.quant import QuantConfig, QuantMethod, quantize_model


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A small Mamba2 model and a byte-level tokenizer.
    # ------------------------------------------------------------------
    tokenizer = ByteTokenizer()
    config = get_preset("mamba2-tiny").with_overrides(vocab_size=tokenizer.vocab_size)
    model = Mamba2Model.from_config(config, InitConfig(seed=0))
    print(f"built {config.name}: {model.num_parameters():,} parameters, "
          f"{config.n_layer} layers, d_model={config.d_model}")

    prompt = tokenizer.encode("LightMamba on FPGA: ")
    generated = greedy_decode(model, prompt, max_new_tokens=16)
    print(f"FP16 sample ({len(generated)} tokens): {tokenizer.decode(generated.tokens)!r}")

    # ------------------------------------------------------------------
    # 2. Quantize to W4A4 with the full LightMamba* scheme.
    # ------------------------------------------------------------------
    quant_config = QuantConfig.w4a4(QuantMethod.LIGHTMAMBA_STAR, group_size=32)
    quantized = quantize_model(model, quant_config)
    q_generated = greedy_decode(quantized, prompt, max_new_tokens=16)
    print(f"{quant_config.label} sample: {tokenizer.decode(q_generated.tokens)!r}")

    eval_sequences = ZipfCorpusGenerator(config.vocab_size, seed=1).sequences(4, 32)
    agreement = top1_agreement(model, quantized, eval_sequences)
    kl = mean_kl_divergence(model, quantized, eval_sequences)
    print(f"fidelity vs FP16: top-1 agreement = {agreement:.1%}, KL divergence = {kl:.4f} nats")

    # ------------------------------------------------------------------
    # 3. The accelerator design point of the paper (Mamba2-2.7B on VCK190).
    # ------------------------------------------------------------------
    design = CoDesignConfig.vck190_w4a4()
    report = LightMambaPipeline(design).run()
    hw = report.hardware
    print(f"\naccelerator design point: {design.label}")
    print(f"  decode throughput : {hw.tokens_per_second:.2f} tokens/s "
          f"(paper: 7.21 tokens/s)")
    print(f"  decode latency    : {hw.latency_ms_per_token:.1f} ms/token")
    print(f"  board power       : {hw.power_w:.2f} W")
    print(f"  energy efficiency : {hw.energy_efficiency_tokens_per_j:.2f} tokens/J "
          f"(paper: 2.25 tokens/J)")
    print(f"  URAM usage        : {hw.uram_total} blocks")
    print("\nper-module resources:")
    print(hw.resources.format_table(design.accelerator.platform))


if __name__ == "__main__":
    main()
