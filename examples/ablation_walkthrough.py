#!/usr/bin/env python3
"""Fig. 10 ablation walkthrough: add LightMamba's techniques one at a time.

Starts from an FP16 Mamba2-2.7B on a naive sequential VCK190 design and adds
4-bit weights, 4-bit activations, rotation (first with a matrix-multiply
Hadamard, then with the FHT unit), computation reordering and fine-grained
tiling -- printing throughput and URAM after every step, next to the values
the paper reports.

Run with:  python examples/ablation_walkthrough.py
           python examples/ablation_walkthrough.py --with-accuracy   (slower)
"""

from __future__ import annotations

import argparse

from repro.bench import fig10_ablation, format_rows
from repro.eval import build_reference_setup


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--with-accuracy",
        action="store_true",
        help="also evaluate the accuracy column on the synthetic reference model",
    )
    parser.add_argument("--examples", type=int, default=8, help="task examples per task")
    args = parser.parse_args()

    setup = None
    if args.with_accuracy:
        print("building the reference evaluation setup (for the accuracy column)...")
        setup = build_reference_setup(num_task_examples=args.examples)

    rows = fig10_ablation(include_accuracy=args.with_accuracy, setup=setup)
    print(format_rows(rows, title="Fig. 10: impact of each technique (measured vs paper)"))

    final = rows[-1]
    print(
        f"\nFinal design point: {final['tokens_per_s']} tokens/s with {final['uram']} URAM "
        f"(paper: {final['paper_tokens_per_s']} tokens/s, {final['paper_uram']} URAM)."
    )


if __name__ == "__main__":
    main()
