#!/usr/bin/env python3
"""Server demo: the asyncio HTTP/SSE front-end under generated traffic.

This example boots the real wire stack from ``repro.serving``:

1. start a ``MambaServer`` on an ephemeral localhost port
   (``serve_in_thread``) and talk to it like any HTTP client: ``/healthz``,
   a streaming ``POST /v1/generate`` whose Server-Sent Events arrive
   token-by-token and match single-sequence decoding exactly, and a client
   that hangs up mid-stream (the server turns the disconnect into a
   ``cancel`` and frees the slot);
2. run the seeded load harness (``repro.serving.loadgen``) against the live
   server over real sockets -- Poisson arrivals, heavy-tailed lengths,
   priority mixes, deadlines and mid-stream disconnects -- and print the
   deterministic latency report (p50/p99 TTFT, queue wait,
   time-per-output-token) plus the ``/stats`` counter surface;
3. gracefully drain: in-flight requests complete on the wire before the
   listener goes away.

Run with:  python examples/server_demo.py
"""

from __future__ import annotations

import time

from repro.mamba import InitConfig, Mamba2Model, get_preset, greedy_decode
from repro.serving import (
    FIFOScheduler,
    InferenceEngine,
    ManualClock,
    ServerConfig,
    TrafficShape,
    make_traffic,
    run_live,
    serve_in_thread,
    verify_against_solo,
)
from repro.serving.loadgen import _Conn, _request_json


def main() -> None:
    model = Mamba2Model.from_config(get_preset("mamba2-tiny"), InitConfig(seed=0))
    print(f"model: {model.config.name}, {model.num_parameters():,} parameters")

    # ------------------------------------------------------------------
    # 1. A live server, one streaming request, one mid-stream hang-up.
    # ------------------------------------------------------------------
    engine = InferenceEngine(model, max_batch_size=4)
    with serve_in_thread(engine) as handle:
        host, port = handle.host, handle.port
        print(f"\nserver listening on http://{host}:{port}")
        _, health = _request_json(host, port, "GET", "/healthz")
        print(f"  /healthz               : {health}")

        prompt = [3, 1, 4, 1, 5, 9, 2, 6]
        conn = _Conn(host, port)
        conn.send(
            "POST", "/v1/generate",
            payload={"prompt": prompt, "max_new_tokens": 10},
        )
        conn.read_head()
        tokens, done = [], None
        while done is None:
            event, data = conn.next_event()
            if event == "token":
                tokens.append(data["token"])
            elif event == "done":
                done = data
        conn.close()
        reference = greedy_decode(model, prompt, 10)
        match = "matches" if tokens == list(reference.tokens) else "MISMATCH vs"
        print(f"  streamed generate      : {len(tokens)} tokens over SSE, "
              f"{match} single-sequence decode")
        lat = done["latency"]
        print(f"  finish/latency         : {done['finish_reason']}; "
              f"ttft {lat['ttft_iterations']} iters, "
              f"{lat['decode_iterations']} decode iters")

        # A client that goes away mid-generation: close the socket after two
        # tokens; the server cancels the request and frees the slot.
        conn = _Conn(host, port)
        conn.send(
            "POST", "/v1/generate",
            payload={"prompt": prompt, "max_new_tokens": 500},
        )
        conn.read_head()
        got = 0
        while got < 2:
            event, data = conn.next_event()
            got += event == "token"
        conn.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            _, stats = _request_json(host, port, "GET", "/stats")
            if stats["disconnect_cancels"] >= 1:
                break
            time.sleep(0.005)
        print(f"  mid-stream disconnect  : observed as cancel "
              f"(disconnect_cancels={stats['disconnect_cancels']}, "
              f"active_slots={stats['active_slots']})")
        # Context exit drains gracefully: accepted work completes exactly once.

    # ------------------------------------------------------------------
    # 2. The load harness against a live server, in lockstep bench mode.
    # ------------------------------------------------------------------
    items = make_traffic(TrafficShape(), 16, model.config.vocab_size, seed=0)
    engine = InferenceEngine(
        model, max_batch_size=4, scheduler=FIFOScheduler(), clock=ManualClock()
    )
    config = ServerConfig(bench_mode=True, manual_clock_step=1.0)
    with serve_in_thread(engine, config=config) as handle:
        result = run_live(handle.host, handle.port, items)
        _, stats = _request_json(handle.host, handle.port, "GET", "/stats")
    mismatches = verify_against_solo(model, items, result.records)
    print(f"\nload harness, live driver ({len(items)} seeded requests over "
          f"real sockets):")
    print(f"  trace hash             : {result.trace_hash} "
          f"(same seed -> same hash, any machine)")
    for key in ("ttft_p50_iters", "ttft_p99_iters", "queue_wait_p99_iters",
                "tpot_p50_tokens", "cancelled_count", "engine_steps"):
        print(f"  {key:22s} : {result.metrics[key]:g}")
    print(f"  tokens/slot-iteration  : "
          f"{result.info['tokens_per_slot_iteration']:.3f}")
    print(f"  finish reasons         : {result.info['finish_reasons']}")
    print(f"  solo-decode check      : "
          f"{'all requests bit-identical' if not mismatches else mismatches}")
    print(f"  server counters        : accepted={stats['requests_accepted']}, "
          f"disconnect_cancels={stats['disconnect_cancels']}, "
          f"open_streams={stats['open_streams']}")


if __name__ == "__main__":
    main()
