#!/usr/bin/env python3
"""Accelerator design-space exploration.

Uses the analytic accelerator model to explore the hardware side of the
co-design:

- the published design points of Table IV (VCK190 W4A4 / W8A8, U280 W4A4)
  against the GPU baselines;
- a sweep over MMU shapes and scheduling modes showing where the VCK190
  design stops being memory-bound;
- the throughput-vs-sequence-length and energy-efficiency-vs-model-size
  studies of Fig. 9.

Run with:  python examples/accelerator_design_space.py
"""

from __future__ import annotations

from repro.bench import (
    fig9a_throughput_vs_seqlen,
    fig9b_energy_efficiency,
    format_rows,
    format_series,
    table4_hardware,
)
from repro.hardware import (
    AcceleratorConfig,
    LightMambaAccelerator,
    MMUConfig,
    ScheduleMode,
    VCK190,
)
from repro.mamba import get_preset


def mmu_sweep() -> None:
    """Sweep the MMU shape and the schedule on the VCK190 W4A4 design."""
    model = get_preset("mamba2-2.7b")
    rows = []
    for din, dout in [(64, 2), (128, 2), (128, 4), (256, 4)]:
        for schedule in (ScheduleMode.SEQUENTIAL, ScheduleMode.FINE_GRAINED):
            config = AcceleratorConfig(
                platform=VCK190,
                mmu=MMUConfig(din=din, dout=dout),
                schedule=schedule,
            )
            acc = LightMambaAccelerator(config, model)
            rows.append(
                {
                    "mmu": f"{din}x{dout}",
                    "schedule": schedule.value,
                    "dsp": int(acc.resource_report().total.dsp),
                    "tokens_per_s": round(acc.tokens_per_second(), 2),
                    "dram_utilisation_%": round(100 * acc.block_schedule().utilisation("dram"), 1),
                }
            )
    print(format_rows(rows, title="MMU shape x schedule sweep (VCK190, W4A4, Mamba2-2.7B)"))
    print("\nOnce the schedule overlaps the SSM with the weight stream, the design is"
          "\nDRAM-bound: growing the MMU only burns DSPs without adding throughput.\n")


def main() -> None:
    print(format_rows(table4_hardware(), title="Table IV: published design points"))
    print()
    mmu_sweep()
    print(format_series(
        fig9a_throughput_vs_seqlen(),
        x_label="output_tokens",
        title="Fig. 9a: throughput vs output length",
    ))
    print()
    print(format_series(
        fig9b_energy_efficiency(),
        x_label="model",
        title="Fig. 9b: energy efficiency vs model size (tokens/J)",
    ))


if __name__ == "__main__":
    main()
