#!/usr/bin/env python3
"""Quantization study: reproduce the algorithm-side evaluation at small scale.

Reproduces, on the synthetic reference model, the paper's algorithm results:

- Fig. 2  -- activation distribution before / after rotation;
- Table II -- 4-bit out-proj activation quantization error per PTQ method;
- Table III (subset) -- gold-continuation perplexity and synthetic zero-shot
  accuracy for FP16 / RTN / SmoothQuant / OS+ / LightMamba at W4A4.

Run with:  python examples/quantization_study.py            (a few minutes)
           python examples/quantization_study.py --fast     (~1 minute)
"""

from __future__ import annotations

import argparse

from repro.bench import (
    fig2_activation_distribution,
    format_rows,
    table2_quant_error,
    table3_accuracy,
)
from repro.eval import build_reference_setup
from repro.quant import QuantMethod


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="use a smaller evaluation budget")
    args = parser.parse_args()

    examples = 4 if args.fast else 12
    print("building the synthetic reference setup "
          f"(16-layer Mamba2-small, {examples} examples per task)...")
    setup = build_reference_setup(num_task_examples=examples)

    # Fig. 2 -------------------------------------------------------------
    fig2 = fig2_activation_distribution(setup)
    rows = [
        {"distribution": "before rotation", **fig2["before"]},
        {"distribution": "after rotation", **fig2["after"]},
    ]
    print("\n" + format_rows(rows, title="Fig. 2: out-proj activation statistics"))

    # Table II ------------------------------------------------------------
    print("\n" + format_rows(
        table2_quant_error(setup),
        title="Table II: 4-bit out-proj activation quantization error",
    ))

    # Table III (W4A4 subset) ----------------------------------------------
    configs = [
        ("FP16", None, None),
        ("RTN", QuantMethod.RTN, "w4a4"),
        ("SQ", QuantMethod.SMOOTHQUANT, "w4a4"),
        ("OS+", QuantMethod.OSPLUS, "w4a4"),
        ("LightMamba", QuantMethod.LIGHTMAMBA, "w4a4"),
        ("LightMamba*", QuantMethod.LIGHTMAMBA_STAR, "w4a4"),
    ]
    print("\nrunning the W4A4 accuracy comparison (this is the slow part)...")
    rows = table3_accuracy(setup, configs=configs)
    print("\n" + format_rows(rows, title="Table III (W4A4 subset): perplexity and accuracy"))
    print("\nNote: absolute values differ from the paper (synthetic model and tasks);")
    print("the method ordering and the W8A8-vs-W4A4 behaviour are the reproduced claims.")


if __name__ == "__main__":
    main()
