#!/usr/bin/env python3
"""Serving demo: batched generation, continuous batching, and scheduling.

This example exercises the ``repro.serving`` subsystem:

1. decode a batch of ragged prompts in one shot with ``BatchedGenerator``
   (greedy and sampled) and verify the results are identical to per-request
   single-sequence decoding;
2. serve a stream of requests through the continuous-batching
   ``InferenceEngine`` with fewer batch slots than requests, streaming the
   first request's tokens as they are generated and showing the batching
   efficiency counters plus per-request latency records;
3. contrast the admission policies: priorities (a late urgent request
   front-runs the queue), a paged token-budget ledger (a long prompt cannot
   stall in-flight decodes by more than one page), cancellation, and
   deadlines;
4. compare wall-clock throughput of the batched path against looping the
   single-sequence decoder.

Run with:  python examples/serving_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.mamba import ByteTokenizer, InitConfig, Mamba2Model, get_preset, greedy_decode
from repro.serving import (
    BatchedGenerator,
    InferenceEngine,
    PagedScheduler,
    PriorityScheduler,
    Request,
)


def main() -> None:
    tokenizer = ByteTokenizer()
    config = get_preset("mamba2-tiny").with_overrides(vocab_size=tokenizer.vocab_size)
    model = Mamba2Model.from_config(config, InitConfig(seed=0))
    print(f"model: {config.name}, {model.num_parameters():,} parameters")

    # ------------------------------------------------------------------
    # 1. Batched generation over ragged prompts.
    # ------------------------------------------------------------------
    texts = ["LightMamba ", "FPGA acceleration: ", "Quantized SSM ", "Batch "]
    prompts = [tokenizer.encode(t) for t in texts]
    generator = BatchedGenerator(model)

    results = generator.generate(prompts, max_new_tokens=12, stop_tokens=tokenizer.eos_id)
    print("\nbatched greedy generation:")
    for text, result in zip(texts, results):
        solo = greedy_decode(model, tokenizer.encode(text), 12, stop_token=tokenizer.eos_id)
        match = "matches" if solo.tokens == result.tokens else "MISMATCH vs"
        print(f"  {text!r:24s} -> {tokenizer.decode(result.tokens)!r}  "
              f"({match} single-sequence decode)")

    sampled = generator.generate(
        prompts, max_new_tokens=12, temperature=0.9, top_k=32, seeds=[7, 8, 9, 10]
    )
    print("\nbatched sampling (temperature 0.9, exact top-32, per-request seeds):")
    for text, result in zip(texts, sampled):
        print(f"  {text!r:24s} -> {tokenizer.decode(result.tokens)!r} "
              f"(mean logprob {np.mean(result.logprobs):.2f})")

    # ------------------------------------------------------------------
    # 2. Continuous batching: 8 requests through 3 slots, streamed.
    # ------------------------------------------------------------------
    engine = InferenceEngine(model, max_batch_size=3)
    rng = np.random.default_rng(0)
    for i in range(8):
        prompt = tokenizer.encode("request %d: " % i)
        engine.submit(
            Request(prompt=tuple(prompt), max_new_tokens=int(rng.integers(4, 14)))
        )
    streamed = []
    completions = engine.run(
        on_token=lambda rid, tok, lp: streamed.append(tok) if rid == 0 else None
    )
    stats = engine.stats
    print(f"\ncontinuous batching: {stats.completed} requests through "
          f"{engine.max_batch_size} slots in {stats.engine_steps} engine steps")
    print(f"  decode calls           : {stats.decode_calls}")
    print(f"  tokens per decode call : {stats.tokens_per_decode_call:.2f} "
          f"(batching efficiency)")
    print(f"  request 0 streamed     : {tokenizer.decode(streamed)!r} "
          f"(token-by-token, via on_token)")
    for completion in completions[:3]:
        lat = completion.latency
        print(f"  request {completion.request_id}: "
              f"{tokenizer.decode(completion.result.tokens)!r} "
              f"[{completion.finish_reason}; waited {lat.queue_wait_iterations} iters, "
              f"ttft {lat.ttft_iterations} iters, {lat.decode_iterations} decode iters]")

    # ------------------------------------------------------------------
    # 3. Admission policies: priority, paged budget, cancel, deadline.
    # ------------------------------------------------------------------
    print("\npriority scheduling (1 slot, urgent request front-runs the queue):")
    engine = InferenceEngine(model, max_batch_size=1, scheduler=PriorityScheduler())
    running = engine.submit(Request(prompt=tuple(tokenizer.encode("running ")),
                                    max_new_tokens=6))
    engine.step()
    batch_id = engine.submit(Request(prompt=tuple(tokenizer.encode("batch job ")),
                                     max_new_tokens=4), priority=0)
    urgent_id = engine.submit(Request(prompt=tuple(tokenizer.encode("URGENT ")),
                                      max_new_tokens=4), priority=10)
    engine.run()
    order = sorted((running, batch_id, urgent_id),
                   key=lambda rid: engine.latency(rid).first_token_step)
    names = {running: "running", batch_id: "batch(prio 0)", urgent_id: "urgent(prio 10)"}
    print("  first-token order      : " + " -> ".join(names[rid] for rid in order))

    print("\npaged admission (page = 16 tokens: a 160-token prompt cannot stall decodes):")
    engine = InferenceEngine(model, max_batch_size=2,
                             scheduler=PagedScheduler(page_tokens=16))
    engine.submit(Request(prompt=tuple(tokenizer.encode("interactive ")),
                          max_new_tokens=12))
    engine.step()
    long_prompt = tuple(tokenizer.encode("x" * 160))
    engine.submit(Request(prompt=long_prompt, max_new_tokens=2))
    max_prefill_per_step = 0
    while engine.has_work:
        before = engine.stats.prefilled_tokens
        engine.step()
        max_prefill_per_step = max(
            max_prefill_per_step, engine.stats.prefilled_tokens - before
        )
    print(f"  longest prompt chunk in one iteration: {max_prefill_per_step} tokens "
          f"(bounded by the page)")

    print("\ncancellation and deadlines:")
    engine = InferenceEngine(model, max_batch_size=1)
    busy = engine.submit(Request(prompt=tuple(tokenizer.encode("busy ")),
                                 max_new_tokens=10))
    engine.step()
    doomed = engine.submit(Request(prompt=tuple(tokenizer.encode("never runs ")),
                                   max_new_tokens=5), timeout=0.0)
    unwanted = engine.submit(Request(prompt=tuple(tokenizer.encode("cancel me ")),
                                     max_new_tokens=5))
    engine.cancel(unwanted)
    done = {c.request_id: c.finish_reason for c in engine.run()}
    print(f"  busy request           : {done[busy]}")
    print(f"  zero-timeout request   : {done[doomed]}")
    print(f"  cancelled request      : {done[unwanted]}")

    # ------------------------------------------------------------------
    # 4. Throughput: batched vs looping the single-sequence decoder.
    # ------------------------------------------------------------------
    bench_prompts = [tokenizer.encode("throughput %d" % i) for i in range(8)]
    start = time.perf_counter()
    for prompt in bench_prompts:
        greedy_decode(model, prompt, 32)
    seq_time = time.perf_counter() - start
    start = time.perf_counter()
    generator.generate(bench_prompts, 32)
    batch_time = time.perf_counter() - start
    total = 8 * 32
    print(f"\nthroughput (8 requests x 32 tokens):")
    print(f"  sequential loop : {total / seq_time:8.0f} tokens/s")
    print(f"  batched         : {total / batch_time:8.0f} tokens/s "
          f"({seq_time / batch_time:.1f}x)")


if __name__ == "__main__":
    main()
