#!/usr/bin/env python3
"""Serving demo: batched generation and continuous batching.

This example exercises the ``repro.serving`` subsystem:

1. decode a batch of ragged prompts in one shot with ``BatchedGenerator``
   (greedy and sampled) and verify the results are identical to per-request
   single-sequence decoding;
2. serve a stream of requests through the continuous-batching
   ``InferenceEngine`` with fewer batch slots than requests, and show the
   batching efficiency counters;
3. compare wall-clock throughput of the batched path against looping the
   single-sequence decoder.

Run with:  python examples/serving_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.mamba import ByteTokenizer, InitConfig, Mamba2Model, get_preset, greedy_decode
from repro.serving import BatchedGenerator, InferenceEngine, Request


def main() -> None:
    tokenizer = ByteTokenizer()
    config = get_preset("mamba2-tiny").with_overrides(vocab_size=tokenizer.vocab_size)
    model = Mamba2Model.from_config(config, InitConfig(seed=0))
    print(f"model: {config.name}, {model.num_parameters():,} parameters")

    # ------------------------------------------------------------------
    # 1. Batched generation over ragged prompts.
    # ------------------------------------------------------------------
    texts = ["LightMamba ", "FPGA acceleration: ", "Quantized SSM ", "Batch "]
    prompts = [tokenizer.encode(t) for t in texts]
    generator = BatchedGenerator(model)

    results = generator.generate(prompts, max_new_tokens=12, stop_tokens=tokenizer.eos_id)
    print("\nbatched greedy generation:")
    for text, result in zip(texts, results):
        solo = greedy_decode(model, tokenizer.encode(text), 12, stop_token=tokenizer.eos_id)
        match = "matches" if solo.tokens == result.tokens else "MISMATCH vs"
        print(f"  {text!r:24s} -> {tokenizer.decode(result.tokens)!r}  "
              f"({match} single-sequence decode)")

    sampled = generator.generate(
        prompts, max_new_tokens=12, temperature=0.9, top_k=32, seeds=[7, 8, 9, 10]
    )
    print("\nbatched sampling (temperature 0.9, exact top-32, per-request seeds):")
    for text, result in zip(texts, sampled):
        print(f"  {text!r:24s} -> {tokenizer.decode(result.tokens)!r} "
              f"(mean logprob {np.mean(result.logprobs):.2f})")

    # ------------------------------------------------------------------
    # 2. Continuous batching: 8 requests through 3 slots.
    # ------------------------------------------------------------------
    engine = InferenceEngine(model, max_batch_size=3)
    rng = np.random.default_rng(0)
    for i in range(8):
        prompt = tokenizer.encode("request %d: " % i)
        engine.submit(
            Request(prompt=tuple(prompt), max_new_tokens=int(rng.integers(4, 14)))
        )
    completions = engine.run()
    stats = engine.stats
    print(f"\ncontinuous batching: {stats.completed} requests through "
          f"{engine.max_batch_size} slots in {stats.engine_steps} engine steps")
    print(f"  decode calls           : {stats.decode_calls}")
    print(f"  tokens per decode call : {stats.tokens_per_decode_call:.2f} "
          f"(batching efficiency)")
    for completion in completions[:3]:
        print(f"  request {completion.request_id}: "
              f"{tokenizer.decode(completion.result.tokens)!r}")

    # ------------------------------------------------------------------
    # 3. Throughput: batched vs looping the single-sequence decoder.
    # ------------------------------------------------------------------
    bench_prompts = [tokenizer.encode("throughput %d" % i) for i in range(8)]
    start = time.perf_counter()
    for prompt in bench_prompts:
        greedy_decode(model, prompt, 32)
    seq_time = time.perf_counter() - start
    start = time.perf_counter()
    generator.generate(bench_prompts, 32)
    batch_time = time.perf_counter() - start
    total = 8 * 32
    print(f"\nthroughput (8 requests x 32 tokens):")
    print(f"  sequential loop : {total / seq_time:8.0f} tokens/s")
    print(f"  batched         : {total / batch_time:8.0f} tokens/s "
          f"({seq_time / batch_time:.1f}x)")


if __name__ == "__main__":
    main()
